"""Differential fuzzing of the engine backends.

Hypothesis generates random scenarios — graph shape, system size,
topology, policy, noise, runtime dynamics, arrival pattern — and every
example requires the object and array backends to agree **bit for bit**
on the schedule, the metrics and the policy stats.  Where the
pre-refactor :class:`~repro.core.reference.ReferenceSimulator` is
applicable (no dynamics, uncontended), it joins as a third oracle.

Every strategy draw is a plain scalar, so the falsifying example
hypothesis prints on failure *is* the replay recipe: paste the printed
kwargs into a direct call of the test function (or re-run with the
printed ``@reproduce_failure`` / ``--hypothesis-seed`` line) to get the
exact same scenario back after shrinking.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamics import DynamicsSpec
from repro.core.reference import ReferenceSimulator
from repro.core.simulator import Simulator
from repro.core.system import Processor, ProcessorType, SystemConfig
from repro.core.topology import star_topology
from repro.data.paper_tables import paper_lookup_table
from repro.graphs.generators import (
    make_chain_dfg,
    make_fork_join_dfg,
    make_independent_dfg,
    make_layered_dfg,
    make_pipeline_dfg,
    make_type1_dfg,
    make_type2_dfg,
)
from repro.graphs.streams import ApplicationArrival, ApplicationStream
from repro.policies.registry import available_policies, get_policy

LOOKUP = paper_lookup_table()

#: fault parameters far from the starvation regime (mttf ≫ service times)
FAULT_PARAMS = {"mttf_ms": 60000.0, "mttr_ms": 4000.0}

DYNAMICS_COMBOS = {
    "none": (),
    "fault": ("fault",),
    "preempt": ("preempt",),
    "fault+preempt": ("fault", "preempt"),
}


def build_dfg(shape: str, n: int, graph_seed: int):
    rng = np.random.default_rng(graph_seed)
    if shape == "type1":
        return make_type1_dfg(max(n, 2), rng=rng)
    if shape == "type2":
        return make_type2_dfg(max(n, 13), rng=rng)
    if shape == "independent":
        return make_independent_dfg(n, rng=rng)
    if shape == "chain":
        return make_chain_dfg(n, rng=rng)
    if shape == "forkjoin":
        return make_fork_join_dfg(max(n - 2, 1), rng=rng)
    if shape == "pipeline":
        return make_pipeline_dfg(n, rng=rng, stage_width=3)
    assert shape == "layered"
    return make_layered_dfg(n, min(4, n), rng=rng)


def build_system(n_cpu: int, n_gpu: int, n_fpga: int, topology: str):
    procs = (
        [Processor(f"cpu{i}", ProcessorType.CPU) for i in range(n_cpu)]
        + [Processor(f"gpu{i}", ProcessorType.GPU) for i in range(n_gpu)]
        + [Processor(f"fpga{i}", ProcessorType.FPGA) for i in range(n_fpga)]
    )
    if topology == "flat":
        return SystemConfig(procs, transfer_rate_gbps=4.0)
    return SystemConfig(
        procs,
        topology=star_topology(
            [p.name for p in procs],
            rate_gbps=4.0,
            contention=(topology == "star_contended"),
        ),
    )


def build_dynamics(combo: str, seed: int):
    specs = []
    for kind in DYNAMICS_COMBOS[combo]:
        if kind == "fault":
            specs.append(DynamicsSpec("fault", {**FAULT_PARAMS, "seed": seed}))
        else:
            specs.append(DynamicsSpec("preempt", {"penalty_ms": 2.0}))
    return specs


def run_one(backend: str | None, sim_cls, system, dfg, policy_name, *,
            noise: bool, dynamics, arrivals, jit=None):
    kwargs = {}
    if backend is not None:
        kwargs["backend"] = backend
        kwargs["jit"] = jit
    sim = sim_cls(
        system,
        LOOKUP,
        exec_noise_sigma=0.25 if noise else 0.0,
        noise_seed=13,
        dynamics=list(dynamics) or None,
        **kwargs,
    )
    return sim.run(dfg, get_policy(policy_name), arrivals=arrivals or None)


def assert_same_run(a, b, label: str) -> None:
    assert list(a.schedule) == list(b.schedule), f"schedule divergence ({label})"
    assert a.metrics == b.metrics, f"metrics divergence ({label})"
    assert a.policy_stats == b.policy_stats, f"policy-stats divergence ({label})"


class TestBackendFuzz:
    @settings(max_examples=50, deadline=None)
    @given(
        shape=st.sampled_from(
            ["type1", "type2", "independent", "chain", "forkjoin", "pipeline",
             "layered"]
        ),
        n=st.integers(min_value=4, max_value=24),
        graph_seed=st.integers(min_value=0, max_value=2**16),
        n_cpu=st.integers(min_value=1, max_value=2),
        n_gpu=st.integers(min_value=1, max_value=2),
        n_fpga=st.integers(min_value=1, max_value=2),
        topology=st.sampled_from(["flat", "star", "star_contended"]),
        policy_name=st.sampled_from(sorted(available_policies())),
        noise=st.booleans(),
        dynamics_combo=st.sampled_from(sorted(DYNAMICS_COMBOS)),
        dynamics_seed=st.integers(min_value=0, max_value=7),
        arrival_seed=st.integers(min_value=0, max_value=2**16),
        staggered=st.booleans(),
        jit=st.sampled_from([None, "off", "on"]),
    )
    def test_object_array_reference_agree(
        self, shape, n, graph_seed, n_cpu, n_gpu, n_fpga, topology,
        policy_name, noise, dynamics_combo, dynamics_seed, arrival_seed,
        staggered, jit,
    ):
        dfg = build_dfg(shape, n, graph_seed)
        system = build_system(n_cpu, n_gpu, n_fpga, topology)
        dynamics = build_dynamics(dynamics_combo, dynamics_seed)
        arrivals = {}
        if staggered:
            rng = np.random.default_rng(arrival_seed)
            arrivals = {
                kid: float(rng.exponential(500.0)) for kid in dfg.entry_kernels()
            }
        obj = run_one("object", Simulator, system, dfg, policy_name,
                      noise=noise, dynamics=dynamics, arrivals=arrivals)
        # jit axis: "on" compiles the _kernels twins where numba exists
        # and falls back bit-identically where it doesn't, so the same
        # examples pin jit parity on the CI numba leg and fallback
        # parity everywhere else.
        arr = run_one("array", Simulator, system, dfg, policy_name,
                      noise=noise, dynamics=dynamics, arrivals=arrivals,
                      jit=jit)
        assert_same_run(obj, arr, "object vs array")
        # the pre-refactor oracle predates dynamics and contention
        if not dynamics and topology != "star_contended":
            ref = run_one(None, ReferenceSimulator, system, dfg, policy_name,
                          noise=noise, dynamics=(), arrivals=arrivals)
            assert_same_run(obj, ref, "object vs reference")

    @settings(max_examples=25, deadline=None)
    @given(
        n_apps=st.integers(min_value=1, max_value=5),
        shapes=st.lists(
            st.sampled_from(["type1", "forkjoin", "pipeline", "chain"]),
            min_size=5, max_size=5,
        ),
        graph_seed=st.integers(min_value=0, max_value=2**16),
        arrival_seed=st.integers(min_value=0, max_value=2**16),
        policy_name=st.sampled_from(sorted(available_policies())),
        dynamics_combo=st.sampled_from(sorted(DYNAMICS_COMBOS)),
        jit=st.sampled_from([None, "off", "on"]),
    )
    def test_streaming_backends_agree(
        self, n_apps, shapes, graph_seed, arrival_seed, policy_name,
        dynamics_combo, jit,
    ):
        """run_stream (admission + retirement) must also match across
        backends — including service metrics — on random app streams."""
        rng = np.random.default_rng(arrival_seed)
        t = 0.0
        apps = []
        for i in range(n_apps):
            dfg = build_dfg(shapes[i], 6, graph_seed + i)
            apps.append(ApplicationArrival(dfg, t))
            t += float(rng.exponential(2000.0))
        dynamics = build_dynamics(dynamics_combo, 1)

        def run(backend: str):
            sim = Simulator(
                build_system(2, 1, 1, "flat"),
                LOOKUP,
                dynamics=list(dynamics) or None,
                backend=backend,
                jit=jit if backend == "array" else None,
            )
            return sim.run_stream(
                ApplicationStream(list(apps)), get_policy(policy_name)
            )

        obj, arr = run("object"), run("array")
        assert_same_run(obj, arr, "stream object vs array")
        assert obj.service == arr.service


if __name__ == "__main__":  # pragma: no cover - manual replay helper
    import sys

    sys.exit(pytest.main([__file__, "-v", *sys.argv[1:]]))
