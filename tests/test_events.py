"""Unit tests for the event queue."""

import pytest

from repro.core.events import Event, EventKind, EventQueue


def ev(t: float, payload=None) -> Event:
    return Event(t, EventKind.KERNEL_COMPLETE, payload)


class TestEvent:
    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            ev(-0.5)

    def test_frozen(self):
        e = ev(1.0)
        with pytest.raises(AttributeError):
            e.time = 2.0


class TestEventQueue:
    def test_pop_returns_earliest(self):
        q = EventQueue()
        q.push(ev(5.0, "b"))
        q.push(ev(1.0, "a"))
        q.push(ev(3.0, "c"))
        assert q.pop().payload == "a"
        assert q.pop().payload == "c"
        assert q.pop().payload == "b"

    def test_fifo_tie_break(self):
        q = EventQueue()
        for name in ("first", "second", "third"):
            q.push(ev(2.0, name))
        assert [q.pop().payload for _ in range(3)] == ["first", "second", "third"]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(ev(1.0, "x"))
        assert q.peek().payload == "x"
        assert len(q) == 1

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().peek()

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(ev(0.0))
        assert q and len(q) == 1

    def test_pop_simultaneous_groups_equal_times(self):
        q = EventQueue()
        q.push(ev(1.0, "a"))
        q.push(ev(1.0, "b"))
        q.push(ev(2.0, "c"))
        batch = q.pop_simultaneous()
        assert [e.payload for e in batch] == ["a", "b"]
        assert q.pop().payload == "c"

    def test_pop_simultaneous_single(self):
        q = EventQueue()
        q.push(ev(1.0, "only"))
        assert [e.payload for e in q.pop_simultaneous()] == ["only"]
        assert not q

    def test_pop_simultaneous_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop_simultaneous()

    def test_interleaved_push_pop(self):
        q = EventQueue()
        q.push(ev(10.0, "late"))
        assert q.pop().payload == "late"
        q.push(ev(5.0, "early"))
        q.push(ev(7.0, "mid"))
        assert q.pop().payload == "early"
        assert q.pop().payload == "mid"


class TestArrivalRankOrdering:
    """Arrival-class events (KERNEL_READY / APP_ARRIVAL) sort before
    progress-class events at the same timestamp regardless of insertion
    order — the invariant that keeps the streaming path's look-ahead
    arrival event in the same batch position as the merged path's
    up-front KERNEL_READY events."""

    def test_arrival_pops_before_completion_at_same_time(self):
        q = EventQueue()
        q.push(Event(5.0, EventKind.KERNEL_COMPLETE, payload="done"))
        q.push(Event(5.0, EventKind.APP_ARRIVAL, payload="app"))
        q.push(Event(5.0, EventKind.KERNEL_READY, payload="ready"))
        kinds = [q.pop().kind for _ in range(3)]
        assert kinds == [
            EventKind.APP_ARRIVAL,
            EventKind.KERNEL_READY,
            EventKind.KERNEL_COMPLETE,
        ]

    def test_fifo_within_a_rank(self):
        q = EventQueue()
        q.push(Event(1.0, EventKind.KERNEL_READY, payload=1))
        q.push(Event(1.0, EventKind.KERNEL_READY, payload=2))
        q.push(Event(1.0, EventKind.TRANSFER_COMPLETE, payload=3))
        q.push(Event(1.0, EventKind.KERNEL_COMPLETE, payload=4))
        assert [q.pop().payload for _ in range(4)] == [1, 2, 3, 4]

    def test_time_still_dominates(self):
        q = EventQueue()
        q.push(Event(1.0, EventKind.KERNEL_COMPLETE))
        q.push(Event(2.0, EventKind.APP_ARRIVAL))
        assert q.pop().kind is EventKind.KERNEL_COMPLETE

    def test_pop_simultaneous_spans_ranks(self):
        q = EventQueue()
        q.push(Event(3.0, EventKind.KERNEL_COMPLETE))
        q.push(Event(3.0, EventKind.APP_ARRIVAL))
        batch = q.pop_simultaneous()
        assert [e.kind for e in batch] == [
            EventKind.APP_ARRIVAL,
            EventKind.KERNEL_COMPLETE,
        ]
