"""Unit tests for the event queue — both implementations.

Every ordering test runs against the object engine's ``EventQueue`` and
the array backend's ``ArrayEventHeap`` through the ``make_queue``
fixture: the heap is a drop-in replacement, so the two must agree on
every observable (pop order, batch grouping, error contract).  The
hypothesis differential test at the bottom drives random push/pop
programs through both side by side.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.array_state import ArrayEventHeap
from repro.core.events import Event, EventKind, EventQueue

QUEUE_IMPLS = {"object": EventQueue, "array": ArrayEventHeap}


@pytest.fixture(params=sorted(QUEUE_IMPLS))
def make_queue(request):
    return QUEUE_IMPLS[request.param]


def ev(t: float, payload=None) -> Event:
    return Event(t, EventKind.KERNEL_COMPLETE, payload)


class TestEvent:
    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            ev(-0.5)

    def test_frozen(self):
        e = ev(1.0)
        with pytest.raises(AttributeError):
            e.time = 2.0


class TestEventQueue:
    def test_pop_returns_earliest(self, make_queue):
        q = make_queue()
        q.push(ev(5.0, "b"))
        q.push(ev(1.0, "a"))
        q.push(ev(3.0, "c"))
        assert q.pop().payload == "a"
        assert q.pop().payload == "c"
        assert q.pop().payload == "b"

    def test_fifo_tie_break(self, make_queue):
        q = make_queue()
        for name in ("first", "second", "third"):
            q.push(ev(2.0, name))
        assert [q.pop().payload for _ in range(3)] == ["first", "second", "third"]

    def test_pop_empty_raises(self, make_queue):
        with pytest.raises(IndexError):
            make_queue().pop()

    def test_peek_does_not_remove(self, make_queue):
        q = make_queue()
        q.push(ev(1.0, "x"))
        assert q.peek().payload == "x"
        assert len(q) == 1

    def test_peek_empty_raises(self, make_queue):
        with pytest.raises(IndexError):
            make_queue().peek()

    def test_len_and_bool(self, make_queue):
        q = make_queue()
        assert not q and len(q) == 0
        q.push(ev(0.0))
        assert q and len(q) == 1

    def test_pop_simultaneous_groups_equal_times(self, make_queue):
        q = make_queue()
        q.push(ev(1.0, "a"))
        q.push(ev(1.0, "b"))
        q.push(ev(2.0, "c"))
        batch = q.pop_simultaneous()
        assert [e.payload for e in batch] == ["a", "b"]
        assert q.pop().payload == "c"

    def test_pop_simultaneous_single(self, make_queue):
        q = make_queue()
        q.push(ev(1.0, "only"))
        assert [e.payload for e in q.pop_simultaneous()] == ["only"]
        assert not q

    def test_pop_simultaneous_empty_raises(self, make_queue):
        with pytest.raises(IndexError):
            make_queue().pop_simultaneous()

    def test_interleaved_push_pop(self, make_queue):
        q = make_queue()
        q.push(ev(10.0, "late"))
        assert q.pop().payload == "late"
        q.push(ev(5.0, "early"))
        q.push(ev(7.0, "mid"))
        assert q.pop().payload == "early"
        assert q.pop().payload == "mid"


#: the two same-timestamp ordering tiers, exhaustively
ARRIVAL_KINDS = (EventKind.KERNEL_READY, EventKind.APP_ARRIVAL)
PROGRESS_KINDS = (
    EventKind.TRANSFER_START,
    EventKind.TRANSFER_COMPLETE,
    EventKind.KERNEL_COMPLETE,
    EventKind.FAULT,
    EventKind.REPAIR,
    EventKind.PREEMPT,
)


class TestArrivalRankOrdering:
    """Arrival-class events (KERNEL_READY / APP_ARRIVAL) sort before
    progress-class events at the same timestamp regardless of insertion
    order — the invariant that keeps the streaming path's look-ahead
    arrival event in the same batch position as the merged path's
    up-front KERNEL_READY events."""

    def test_arrival_pops_before_completion_at_same_time(self, make_queue):
        q = make_queue()
        q.push(Event(5.0, EventKind.KERNEL_COMPLETE, payload="done"))
        q.push(Event(5.0, EventKind.APP_ARRIVAL, payload="app"))
        q.push(Event(5.0, EventKind.KERNEL_READY, payload="ready"))
        kinds = [q.pop().kind for _ in range(3)]
        assert kinds == [
            EventKind.APP_ARRIVAL,
            EventKind.KERNEL_READY,
            EventKind.KERNEL_COMPLETE,
        ]

    def test_fifo_within_a_rank(self, make_queue):
        q = make_queue()
        q.push(Event(1.0, EventKind.KERNEL_READY, payload=1))
        q.push(Event(1.0, EventKind.KERNEL_READY, payload=2))
        q.push(Event(1.0, EventKind.TRANSFER_COMPLETE, payload=3))
        q.push(Event(1.0, EventKind.KERNEL_COMPLETE, payload=4))
        assert [q.pop().payload for _ in range(4)] == [1, 2, 3, 4]

    def test_time_still_dominates(self, make_queue):
        q = make_queue()
        q.push(Event(1.0, EventKind.KERNEL_COMPLETE))
        q.push(Event(2.0, EventKind.APP_ARRIVAL))
        assert q.pop().kind is EventKind.KERNEL_COMPLETE

    def test_pop_simultaneous_spans_ranks(self, make_queue):
        q = make_queue()
        q.push(Event(3.0, EventKind.KERNEL_COMPLETE))
        q.push(Event(3.0, EventKind.APP_ARRIVAL))
        batch = q.pop_simultaneous()
        assert [e.kind for e in batch] == [
            EventKind.APP_ARRIVAL,
            EventKind.KERNEL_COMPLETE,
        ]


class TestAllKindsEqualTimestampOrdering:
    """Total order across *every* event kind at one timestamp: every
    arrival-class event before every progress-class event (FAULT, REPAIR
    and PREEMPT included), FIFO within each class — asserted pairwise
    over all kind combinations and on the full shuffled set."""

    def test_kind_partition_is_exhaustive(self):
        assert set(ARRIVAL_KINDS) | set(PROGRESS_KINDS) == set(EventKind)
        assert not set(ARRIVAL_KINDS) & set(PROGRESS_KINDS)

    @pytest.mark.parametrize("arrival", ARRIVAL_KINDS)
    @pytest.mark.parametrize("progress", PROGRESS_KINDS)
    def test_arrival_beats_progress_pairwise(self, make_queue, arrival, progress):
        # progress pushed first: insertion order alone would invert this
        q = make_queue()
        q.push(Event(1.0, progress, payload="p"))
        q.push(Event(1.0, arrival, payload="a"))
        assert [q.pop().kind for _ in range(2)] == [arrival, progress]

    @pytest.mark.parametrize("first", PROGRESS_KINDS)
    @pytest.mark.parametrize("second", PROGRESS_KINDS)
    def test_progress_kinds_are_fifo_among_themselves(
        self, make_queue, first, second
    ):
        q = make_queue()
        q.push(Event(1.0, first, payload=1))
        q.push(Event(1.0, second, payload=2))
        assert [q.pop().payload for _ in range(2)] == [1, 2]

    def test_full_shuffled_batch_orders_by_class_then_fifo(self, make_queue):
        # interleave the classes; expect all arrivals (in push order),
        # then all progress events (in push order)
        q = make_queue()
        pushes = [
            (EventKind.FAULT, "f1"),
            (EventKind.KERNEL_READY, "r1"),
            (EventKind.PREEMPT, "p1"),
            (EventKind.APP_ARRIVAL, "a1"),
            (EventKind.TRANSFER_COMPLETE, "t1"),
            (EventKind.KERNEL_READY, "r2"),
            (EventKind.REPAIR, "f2"),
            (EventKind.KERNEL_COMPLETE, "c1"),
            (EventKind.APP_ARRIVAL, "a2"),
            (EventKind.TRANSFER_START, "t2"),
        ]
        for kind, tag in pushes:
            q.push(Event(4.0, kind, payload=tag))
        batch = q.pop_simultaneous()
        assert [e.payload for e in batch] == [
            "r1", "a1", "r2", "a2",  # arrival class, FIFO
            "f1", "p1", "t1", "f2", "c1", "t2",  # progress class, FIFO
        ]

    def test_time_dominates_rank_for_new_kinds(self, make_queue):
        q = make_queue()
        q.push(Event(2.0, EventKind.KERNEL_READY))
        q.push(Event(1.0, EventKind.FAULT))
        assert q.pop().kind is EventKind.FAULT


# ----------------------------------------------------------------------
# differential property test: ArrayEventHeap ≡ EventQueue
# ----------------------------------------------------------------------
_push_op = st.tuples(
    st.just("push"),
    # a handful of timestamps so same-time collisions are common
    st.sampled_from([0.0, 1.0, 1.5, 2.0, 3.0]),
    st.sampled_from(list(EventKind)),
)
_ops = st.lists(
    st.one_of(
        _push_op,
        st.just(("pop",)),
        st.just(("pop_simultaneous",)),
        st.just(("peek",)),
    ),
    max_size=60,
)


class TestArrayHeapMatchesEventQueue:
    """Drive random push/pop/peek programs through both implementations
    and require identical observable behaviour at every step — the
    executable form of the drop-in-replacement contract the array
    backend's run loop relies on."""

    @settings(max_examples=200, deadline=None)
    @given(ops=_ops)
    def test_same_observable_sequence(self, ops):
        ref, heap = EventQueue(), ArrayEventHeap()
        tag = 0
        for op in ops:
            if op[0] == "push":
                _, time, kind = op
                tag += 1
                ref.push(Event(time, kind, payload=tag))
                heap.push(Event(time, kind, payload=tag))
            elif op[0] == "pop":
                if ref:
                    assert heap.pop() == ref.pop()
                else:
                    with pytest.raises(IndexError):
                        heap.pop()
            elif op[0] == "pop_simultaneous":
                if ref:
                    assert heap.pop_simultaneous() == ref.pop_simultaneous()
                else:
                    with pytest.raises(IndexError):
                        heap.pop_simultaneous()
            else:  # peek
                if ref:
                    assert heap.peek() == ref.peek()
                else:
                    with pytest.raises(IndexError):
                        heap.peek()
            assert len(heap) == len(ref)
        # drain: the remaining orders must agree exactly
        while ref:
            assert heap.pop() == ref.pop()
        assert not heap
