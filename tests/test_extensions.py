"""Tests for the extension experiments (streaming, extended pool, energy)."""

import pytest

from repro.experiments.extensions import (
    energy_comparison,
    extended_policy_comparison,
    streaming_load_sweep,
)
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


class TestStreamingLoadSweep:
    @pytest.fixture(scope="class")
    def table(self, runner):
        return streaming_load_sweep(runner=runner, n_applications=10)

    def test_covers_all_dynamic_policies(self, table):
        assert len(table.rows) == 8
        assert "HEFT" not in table.column("Policy")

    def test_heavier_load_never_faster_for_apt(self, table):
        apt_row = next(r for r in table.rows if r[0] == "APT")
        # lighter load (larger inter-arrival) stretches the stream span,
        # so makespan under light load is at least the saturated one.
        assert apt_row[1] >= apt_row[3] - 1e-6

    def test_apt_at_least_matches_met_under_saturation(self, table):
        apt = next(r for r in table.rows if r[0] == "APT")
        met = next(r for r in table.rows if r[0] == "MET")
        assert apt[3] <= met[3] * 1.01

    def test_deterministic(self, runner):
        a = streaming_load_sweep(runner=runner, n_applications=6)
        b = streaming_load_sweep(runner=runner, n_applications=6)
        assert a.rows == b.rows


class TestExtendedPolicyComparison:
    @pytest.fixture(scope="class")
    def table(self, runner):
        return extended_policy_comparison(runner=runner)

    def test_all_policies_present(self, table):
        assert set(table.column("Policy")) == {
            "APT", "MET", "MINMIN", "MAXMIN", "SUFFERAGE", "CPOP", "HEFT", "PEFT",
        }

    def test_apt_beats_the_batch_heuristics(self, table):
        values = {r[0]: (r[1], r[2]) for r in table.rows}
        for name in ("MINMIN", "MAXMIN", "SUFFERAGE"):
            assert values["APT"][0] < values[name][0]
            assert values["APT"][1] < values[name][1]

    def test_all_values_positive(self, table):
        for row in table.rows:
            assert row[1] > 0 and row[2] > 0


class TestEnergyComparison:
    @pytest.fixture(scope="class")
    def table(self, runner):
        return energy_comparison(runner=runner)

    def test_columns(self, table):
        assert table.headers == (
            "Policy", "mean makespan (ms)", "mean energy (J)", "mean EDP (J·s)",
        )

    def test_apt_edp_beats_met(self, table):
        values = {r[0]: r for r in table.rows}
        assert values["APT"][3] < values["MET"][3]

    def test_edp_consistent_with_definition(self, table):
        # EDP per graph uses per-graph makespans, so the suite-mean EDP is
        # at least mean_energy × (min makespan) and at most × (max);
        # sanity: it is within 10x of mean_energy × mean_makespan.
        for row in table.rows:
            _, mk, joules, edp = row
            approx = joules * mk / 1e3
            assert approx / 10 < edp < approx * 10
