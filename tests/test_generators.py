"""Unit tests for workload generators."""

import numpy as np
import pytest

from repro.graphs.analysis import levels, parallelism_profile
from repro.graphs.dfg import KernelSpec
from repro.graphs.generators import (
    PAPER_KERNEL_POPULATION,
    TYPE2_MIN_KERNELS,
    KernelPopulation,
    make_chain_dfg,
    make_fork_join_dfg,
    make_independent_dfg,
    make_layered_dfg,
    make_type1_dfg,
    make_type2_dfg,
)


class TestKernelPopulation:
    def test_sample_draws_from_choices(self, rng):
        pop = KernelPopulation((("a", 10), ("b", 20)))
        seen = {pop.sample(rng).kernel for _ in range(50)}
        assert seen == {"a", "b"}

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            KernelPopulation(())

    def test_paper_population_covers_all_seven_kernels(self):
        kernels = {k for k, _ in PAPER_KERNEL_POPULATION.choices}
        assert kernels == {"matmul", "matinv", "cholesky", "nw", "bfs", "srad", "gem"}

    def test_sample_many_length(self, rng):
        assert len(PAPER_KERNEL_POPULATION.sample_many(17, rng)) == 17


class TestType1:
    def test_structure(self, rng):
        dfg = make_type1_dfg(9, rng=rng)
        # Figure 3: 8 parallel kernels at level 0, the 9th joins them all.
        assert len(dfg) == 9
        assert dfg.entry_kernels() == list(range(8))
        assert dfg.exit_kernels() == [8]
        assert dfg.predecessors(8) == list(range(8))
        assert parallelism_profile(dfg) == [8, 1]

    def test_minimum_size(self, rng):
        with pytest.raises(ValueError):
            make_type1_dfg(1, rng=rng)
        dfg = make_type1_dfg(2, rng=rng)
        assert dfg.edges() == [(0, 1)]

    def test_deterministic_given_seed(self):
        a = make_type1_dfg(20, rng=np.random.default_rng(5))
        b = make_type1_dfg(20, rng=np.random.default_rng(5))
        assert [a.spec(i) for i in a] == [b.spec(i) for i in b]

    def test_explicit_specs(self):
        specs = [KernelSpec("bfs", 2_034_736)] * 5
        dfg = make_type1_dfg(5, specs=specs)
        assert all(dfg.spec(i).kernel == "bfs" for i in dfg)

    def test_spec_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make_type1_dfg(5, specs=[KernelSpec("bfs", 10)] * 4)

    def test_needs_rng_or_specs(self):
        with pytest.raises(ValueError):
            make_type1_dfg(5)


class TestType2:
    def test_kernel_count_exact(self, rng):
        for n in (TYPE2_MIN_KERNELS, 46, 73, 157):
            dfg = make_type2_dfg(n, rng=np.random.default_rng(n))
            assert len(dfg) == n

    def test_minimum_enforced(self, rng):
        with pytest.raises(ValueError):
            make_type2_dfg(TYPE2_MIN_KERNELS - 1, rng=rng)

    def test_single_entry_single_exit(self, rng):
        dfg = make_type2_dfg(46, rng=rng)
        assert len(dfg.entry_kernels()) == 1
        assert len(dfg.exit_kernels()) == 1

    def test_has_three_diamond_blocks(self, rng):
        # Each diamond contributes one level whose width is its middle
        # count; the chain contributes width-1 levels.  With n=46 the
        # 46 - 4 chain - 6 top/bottom = 36 middles split 12/12/12.
        dfg = make_type2_dfg(46, rng=rng)
        widths = parallelism_profile(dfg)
        assert sorted(widths, reverse=True)[:3] == [12, 12, 12]
        assert widths.count(1) == len(widths) - 3

    def test_depth_is_fixed_regardless_of_n(self, rng):
        # Growing n only widens the diamonds (paper: "the structure
        # remains the same").
        d46 = make_type2_dfg(46, rng=np.random.default_rng(1))
        d157 = make_type2_dfg(157, rng=np.random.default_rng(2))
        assert len(parallelism_profile(d46)) == len(parallelism_profile(d157))

    def test_validates_as_dag(self, rng):
        make_type2_dfg(93, rng=rng).validate()


class TestOtherGenerators:
    def test_independent_has_no_edges(self, rng):
        dfg = make_independent_dfg(12, rng=rng)
        assert dfg.n_edges == 0
        assert len(dfg) == 12

    def test_chain_is_serial(self, rng):
        dfg = make_chain_dfg(6, rng=rng)
        assert dfg.edges() == [(i, i + 1) for i in range(5)]
        assert parallelism_profile(dfg) == [1] * 6

    def test_fork_join_shape(self, rng):
        dfg = make_fork_join_dfg(4, rng=rng)
        assert len(dfg) == 6
        assert parallelism_profile(dfg) == [1, 4, 1]

    def test_layered_every_nonentry_has_predecessor(self, rng):
        dfg = make_layered_dfg(40, 5, rng=rng)
        lv = levels(dfg)
        for kid in dfg:
            if lv[kid] > 0:
                assert dfg.predecessors(kid)

    def test_layered_respects_layer_count(self, rng):
        dfg = make_layered_dfg(30, 6, rng=rng)
        assert len(parallelism_profile(dfg)) <= 6
        assert len(dfg) == 30

    def test_layered_parameter_validation(self, rng):
        with pytest.raises(ValueError):
            make_layered_dfg(3, 5, rng=rng)
        with pytest.raises(ValueError):
            make_layered_dfg(10, 2, rng=rng, edge_probability=1.5)

    def test_chain_and_forkjoin_validation(self, rng):
        with pytest.raises(ValueError):
            make_chain_dfg(0, rng=rng)
        with pytest.raises(ValueError):
            make_fork_join_dfg(0, rng=rng)
        with pytest.raises(ValueError):
            make_independent_dfg(0, rng=rng)


class TestPipelineDFG:
    def test_stage_structure(self, rng, synth_population):
        from repro.graphs.generators import make_pipeline_dfg

        dfg = make_pipeline_dfg(10, rng=rng, population=synth_population, stage_width=4)
        assert len(dfg) == 10
        # stages: [0-3], [4-7], [8-9]; each kernel depends on full prior stage
        assert dfg.predecessors(4) == [0, 1, 2, 3]
        assert dfg.predecessors(8) == [4, 5, 6, 7]
        assert dfg.entry_kernels() == [0, 1, 2, 3]

    def test_parallelism_bounded_by_stage_width(self, rng, synth_population):
        from repro.graphs.analysis import parallelism_profile
        from repro.graphs.generators import make_pipeline_dfg

        dfg = make_pipeline_dfg(40, rng=rng, population=synth_population, stage_width=5)
        assert max(parallelism_profile(dfg)) <= 5

    def test_single_stage_is_independent(self, rng, synth_population):
        from repro.graphs.generators import make_pipeline_dfg

        dfg = make_pipeline_dfg(3, rng=rng, population=synth_population, stage_width=8)
        assert dfg.n_edges == 0

    def test_validation(self, rng, synth_population):
        from repro.graphs.generators import make_pipeline_dfg

        with pytest.raises(ValueError):
            make_pipeline_dfg(0, rng=rng, population=synth_population)
        with pytest.raises(ValueError):
            make_pipeline_dfg(5, rng=rng, population=synth_population, stage_width=0)
