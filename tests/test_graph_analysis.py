"""Unit tests for graph analysis (levels, critical path, bounds)."""

import pytest

from repro.graphs.analysis import (
    critical_path,
    levels,
    lower_bound_makespan,
    parallelism_profile,
    sequential_time,
    summarize,
)
from repro.graphs.dfg import DFG
from repro.policies.met import MET
from tests.test_simulator import dfg_of


class TestLevels:
    def test_chain_levels(self):
        dfg = dfg_of("fast_cpu", "fast_cpu", "fast_cpu", deps=[(0, 1), (1, 2)])
        assert levels(dfg) == {0: 0, 1: 1, 2: 2}

    def test_level_is_longest_path(self):
        # 0→1→3 and 0→3: kernel 3 sits at level 2, not 1.
        dfg = dfg_of("fast_cpu", "fast_cpu", "fast_cpu", "fast_cpu",
                     deps=[(0, 1), (1, 3), (0, 3)])
        assert levels(dfg)[3] == 2

    def test_parallelism_profile(self):
        dfg = dfg_of("fast_cpu", "fast_cpu", "fast_cpu", deps=[(0, 2), (1, 2)])
        assert parallelism_profile(dfg) == [2, 1]

    def test_empty_graph(self):
        assert parallelism_profile(DFG()) == []


class TestCriticalPath:
    def test_chain_sums_best_times(self, system, synth_lookup):
        # fast_cpu(10) → fast_gpu(10): critical path = 20 in best case.
        dfg = dfg_of("fast_cpu", "fast_gpu", deps=[(0, 1)])
        path, length = critical_path(dfg, synth_lookup, system)
        assert path == [0, 1]
        assert length == pytest.approx(20.0)

    def test_picks_heavier_branch(self, system, synth_lookup):
        # 0 → {1: uniform(20), 2: fast_gpu(10)} → 3
        dfg = dfg_of("fast_cpu", "uniform", "fast_gpu", "fast_cpu",
                     deps=[(0, 1), (0, 2), (1, 3), (2, 3)])
        path, length = critical_path(dfg, synth_lookup, system)
        assert path == [0, 1, 3]
        assert length == pytest.approx(10 + 20 + 10)

    def test_empty_graph(self, system, synth_lookup):
        assert critical_path(DFG(), synth_lookup, system) == ([], 0.0)

    def test_sequential_time_sums_minima(self, system, synth_lookup):
        dfg = dfg_of("fast_cpu", "fast_gpu", "uniform")
        assert sequential_time(dfg, synth_lookup, system) == pytest.approx(40.0)


class TestLowerBound:
    def test_bound_never_exceeds_any_simulated_makespan(
        self, system, synth_lookup, synth_sim, synth_population, rng
    ):
        from repro.graphs.generators import make_type2_dfg

        dfg = make_type2_dfg(30, rng=rng, population=synth_population)
        bound = lower_bound_makespan(dfg, synth_lookup, system)
        result = synth_sim.run(dfg, MET())
        assert result.makespan >= bound - 1e-9

    def test_work_bound_dominates_on_wide_graphs(self, system, synth_lookup):
        # 30 independent uniform kernels: work/3 = 200 > any single path (20).
        dfg = dfg_of(*["uniform"] * 30)
        bound = lower_bound_makespan(dfg, synth_lookup, system)
        assert bound == pytest.approx(30 * 20 / 3)

    def test_path_bound_dominates_on_chains(self, system, synth_lookup):
        dfg = dfg_of(*["uniform"] * 5, deps=[(i, i + 1) for i in range(4)])
        bound = lower_bound_makespan(dfg, synth_lookup, system)
        assert bound == pytest.approx(100.0)

    def test_empty_graph_bound(self, system, synth_lookup):
        assert lower_bound_makespan(DFG(), synth_lookup, system) == 0.0


class TestSummarize:
    def test_summary_fields(self, rng, synth_population):
        from repro.graphs.generators import make_type1_dfg

        dfg = make_type1_dfg(10, rng=rng, population=synth_population)
        s = summarize(dfg)
        assert s["kernels"] == 10
        assert s["depth"] == 2
        assert s["max_width"] == 9
        assert sum(s["kernel_mix"].values()) == 10
