"""Unit tests for HEFT: ranks (hand-computed), insertion, plan feasibility.

Hand-computed example (synthetic lookup, 1 M-element kernels, 4 GB/s):

* transfer of one kernel's data between distinct processors = 1 ms, so the
  HEFT average communication cost c̄ (mean over all 9 ordered processor
  pairs, 6 of which move data) = 2/3 ms;
* ``fast_cpu`` = (10, 100, 50) and ``fast_gpu`` = (100, 10, 50) both have
  w̄ = 160/3.
"""

import pytest

from repro.policies.heft import (
    HEFT,
    _Slot,
    downward_rank,
    find_insertion_start,
    upward_rank,
)
from repro.policies.met import MET
from repro.core.cost import CostModel
from tests.conftest import make_synth_population
from tests.test_simulator import dfg_of

CBAR = 2.0 / 3.0
WBAR = 160.0 / 3.0


@pytest.fixture
def chain_dfg():
    return dfg_of("fast_cpu", "fast_gpu", deps=[(0, 1)])


class TestRanks:
    def test_upward_rank_exit_is_mean_exec(self, chain_dfg, system, synth_lookup):
        ranks = upward_rank(chain_dfg, system, synth_lookup)
        assert ranks[1] == pytest.approx(WBAR)

    def test_upward_rank_recurrence(self, chain_dfg, system, synth_lookup):
        ranks = upward_rank(chain_dfg, system, synth_lookup)
        assert ranks[0] == pytest.approx(WBAR + CBAR + WBAR)

    def test_downward_rank_entry_is_zero(self, chain_dfg, system, synth_lookup):
        ranks = downward_rank(chain_dfg, system, synth_lookup)
        assert ranks[0] == 0.0

    def test_downward_rank_recurrence(self, chain_dfg, system, synth_lookup):
        ranks = downward_rank(chain_dfg, system, synth_lookup)
        assert ranks[1] == pytest.approx(WBAR + CBAR)

    def test_upward_rank_decreases_along_paths(self, system, synth_lookup, rng):
        from repro.graphs.generators import make_type2_dfg

        dfg = make_type2_dfg(20, rng=rng, population=make_synth_population())
        ranks = upward_rank(dfg, system, synth_lookup)
        for u, v in dfg.edges():
            assert ranks[u] > ranks[v]


class TestInsertion:
    def test_empty_processor_starts_at_est(self):
        assert find_insertion_start([], est=5.0, duration=10.0) == 5.0

    def test_gap_before_first_slot(self):
        slots = [_Slot(20.0, 30.0)]
        assert find_insertion_start(slots, est=0.0, duration=10.0) == 0.0

    def test_gap_between_slots(self):
        slots = [_Slot(0.0, 10.0), _Slot(25.0, 40.0)]
        assert find_insertion_start(slots, est=0.0, duration=10.0) == 10.0

    def test_gap_too_small_falls_through(self):
        slots = [_Slot(0.0, 10.0), _Slot(15.0, 40.0)]
        assert find_insertion_start(slots, est=0.0, duration=10.0) == 40.0

    def test_est_inside_gap(self):
        slots = [_Slot(0.0, 10.0), _Slot(30.0, 40.0)]
        assert find_insertion_start(slots, est=12.0, duration=5.0) == 12.0

    def test_after_last_slot(self):
        slots = [_Slot(0.0, 50.0)]
        assert find_insertion_start(slots, est=0.0, duration=10.0) == 50.0


class TestPlanning:
    def test_chain_placement(self, chain_dfg, system, synth_lookup):
        plan = HEFT().plan(chain_dfg, CostModel(system, synth_lookup))
        assert plan.processor_of[0] == "cpu0"
        assert plan.processor_of[1] == "gpu0"
        assert plan.planned_start[1] == pytest.approx(11.0)  # 10 exec + 1 comm
        assert plan.planned_finish[1] == pytest.approx(21.0)

    def test_plan_covers_all_kernels_uniquely(self, system, synth_lookup, rng):
        from repro.graphs.generators import make_type1_dfg

        dfg = make_type1_dfg(25, rng=rng, population=make_synth_population())
        plan = HEFT().plan(dfg, CostModel(system, synth_lookup))
        plan.validate(dfg, system)

    def test_simulated_schedule_is_feasible(self, synth_sim, rng):
        from repro.graphs.generators import make_type2_dfg

        dfg = make_type2_dfg(30, rng=rng, population=make_synth_population())
        result = synth_sim.run(dfg, HEFT())
        result.schedule.validate(dfg)

    def test_beats_or_matches_met_on_mixed_independent_load(self, synth_sim):
        # A bag of kernels each fastest on a distinct processor: both MET
        # and HEFT should achieve the perfectly-parallel placement.
        dfg = dfg_of("fast_cpu", "fast_gpu", "fast_fpga")
        heft = synth_sim.run(dfg, HEFT()).makespan
        met = synth_sim.run(dfg, MET()).makespan
        assert heft == pytest.approx(met) == pytest.approx(10.0)

    def test_spreads_contended_kernels(self, synth_sim_no_transfer):
        # Six fast_gpu kernels: queueing the 6th on the GPU would finish at
        # 60 ms, so HEFT's EFT logic spills it to the FPGA (50 ms).
        dfg = dfg_of(*["fast_gpu"] * 6)
        result = synth_sim_no_transfer.run(dfg, HEFT())
        assert len({e.processor for e in result.schedule}) > 1

    def test_static_policy_flag(self):
        assert not HEFT().is_dynamic
