"""Tests for heterogeneity rescaling and execution-time noise."""

import math

import pytest

from repro.core.lookup import scale_heterogeneity
from repro.core.simulator import Simulator
from repro.core.system import ProcessorType
from repro.data.paper_tables import paper_lookup_table
from repro.policies.met import MET
from tests.test_simulator import dfg_of

CPU, GPU, FPGA = ProcessorType.CPU, ProcessorType.GPU, ProcessorType.FPGA


class TestScaleHeterogeneity:
    def test_beta_one_is_identity(self, synth_lookup):
        scaled = scale_heterogeneity(synth_lookup, 1.0)
        for e in synth_lookup.entries():
            assert scaled.time(e.kernel, e.data_size, e.ptype) == pytest.approx(
                e.time_ms
            )

    def test_beta_zero_collapses_to_geometric_mean(self, synth_lookup):
        scaled = scale_heterogeneity(synth_lookup, 0.0)
        # fast_cpu row (10, 100, 50): geometric mean = (10·100·50)^(1/3).
        g = (10.0 * 100.0 * 50.0) ** (1 / 3)
        for ptype in (CPU, GPU, FPGA):
            assert scaled.time("fast_cpu", 1_000_000, ptype) == pytest.approx(g)

    def test_heterogeneity_ratio_scales_monotonically(self, synth_lookup):
        ratios = [
            scale_heterogeneity(synth_lookup, beta).heterogeneity(
                "fast_gpu", 1_000_000, (CPU, GPU, FPGA)
            )
            for beta in (0.0, 0.5, 1.0, 2.0)
        ]
        assert ratios[0] == pytest.approx(1.0)
        assert ratios == sorted(ratios)

    def test_geometric_mean_preserved(self, synth_lookup):
        for beta in (0.0, 0.5, 2.0):
            scaled = scale_heterogeneity(synth_lookup, beta)
            times = [scaled.time("fast_fpga", 1_000_000, p) for p in (CPU, GPU, FPGA)]
            g = math.exp(sum(math.log(t) for t in times) / 3)
            assert g == pytest.approx((50.0 * 100.0 * 10.0) ** (1 / 3))

    def test_negative_beta_rejected(self, synth_lookup):
        with pytest.raises(ValueError):
            scale_heterogeneity(synth_lookup, -0.1)

    def test_works_on_paper_table(self):
        scaled = scale_heterogeneity(paper_lookup_table(), 0.5)
        assert len(scaled) == len(paper_lookup_table())
        # spread strictly shrinks for the extreme matmul row
        orig = paper_lookup_table().heterogeneity("matmul", 64_000_000, (CPU, GPU, FPGA))
        new = scaled.heterogeneity("matmul", 64_000_000, (CPU, GPU, FPGA))
        assert new < orig


class TestExecNoise:
    def test_sigma_zero_is_noise_free(self, system, synth_lookup):
        clean = Simulator(system, synth_lookup)
        noisy0 = Simulator(system, synth_lookup, exec_noise_sigma=0.0, noise_seed=9)
        dfg = dfg_of("fast_cpu", "fast_gpu")
        assert clean.run(dfg, MET()).makespan == noisy0.run(dfg, MET()).makespan

    def test_noise_changes_actual_times(self, system, synth_lookup):
        sim = Simulator(system, synth_lookup, exec_noise_sigma=0.5, noise_seed=1)
        result = sim.run(dfg_of("fast_cpu"), MET())
        assert result.schedule[0].exec_time != pytest.approx(10.0)

    def test_noise_deterministic_per_seed(self, system, synth_lookup):
        dfg = dfg_of("fast_cpu", "fast_gpu", "uniform")
        a = Simulator(system, synth_lookup, exec_noise_sigma=0.3, noise_seed=5)
        b = Simulator(system, synth_lookup, exec_noise_sigma=0.3, noise_seed=5)
        assert a.run(dfg, MET()).makespan == b.run(dfg, MET()).makespan

    def test_same_noise_across_policies(self, system, synth_lookup):
        # Kernel noise factors are id-indexed, so a kernel's actual time
        # on the SAME processor matches across policies.
        from repro.policies.apt import APT

        dfg = dfg_of("fast_cpu", "fast_gpu")
        sim = Simulator(system, synth_lookup, exec_noise_sigma=0.4, noise_seed=2)
        met = sim.run(dfg, MET())
        apt = sim.run(dfg, APT(alpha=1.0))
        for kid in (0, 1):
            assert met.schedule[kid].exec_time == pytest.approx(
                apt.schedule[kid].exec_time
            )

    def test_negative_sigma_rejected(self, system, synth_lookup):
        with pytest.raises(ValueError):
            Simulator(system, synth_lookup, exec_noise_sigma=-0.1)

    def test_noisy_schedule_still_validates(self, system, synth_lookup):
        dfg = dfg_of("fast_cpu", "fast_gpu", "uniform", deps=[(0, 2), (1, 2)])
        sim = Simulator(system, synth_lookup, exec_noise_sigma=0.6, noise_seed=3)
        result = sim.run(dfg, MET())
        result.schedule.validate(dfg)


class TestExtensionStudies:
    def test_heterogeneity_sweep_shape(self):
        from repro.experiments.extensions import heterogeneity_sweep

        t = heterogeneity_sweep(betas=(0.0, 1.0), alphas=(1.0, 4.0), n_graphs=2)
        rows = {r[0]: r for r in t.rows}
        # homogeneous systems give APT its biggest edge over MET
        assert rows[0.0][2] > rows[1.0][2]
        assert rows[0.0][2] > 10.0

    def test_estimation_error_keeps_apt_ahead(self):
        from repro.experiments.extensions import estimation_error_robustness

        t = estimation_error_robustness(
            sigmas=(0.0, 0.3), n_graphs=2, n_noise_seeds=2
        )
        for row in t.rows:
            assert row[3] > 0.0  # APT improvement survives the noise
