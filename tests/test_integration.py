"""End-to-end integration tests over the public API surface."""

import numpy as np
import pytest

import repro
from repro import (
    APT,
    CPU_GPU_FPGA,
    DFG,
    HEFT,
    MET,
    KernelSpec,
    Simulator,
    make_type1_dfg,
    make_type2_dfg,
    paper_lookup_table,
)


class TestPublicAPI:
    def test_quickstart_flow(self):
        """The README quickstart, verbatim in spirit."""
        system = CPU_GPU_FPGA(transfer_rate_gbps=4.0)
        lookup = paper_lookup_table()
        dfg = make_type1_dfg(n_kernels=20, rng=np.random.default_rng(0))
        sim = Simulator(system, lookup)
        result_apt = sim.run(dfg, APT(alpha=4.0))
        result_met = sim.run(dfg, MET())
        assert result_apt.makespan <= result_met.makespan + 1e-9

    def test_all_documented_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestCustomHardware:
    def test_multi_gpu_system(self):
        """Two GPUs let MET run two GPU-favourite kernels in parallel."""
        system = CPU_GPU_FPGA(n_gpu=2)
        lookup = paper_lookup_table()
        dfg = DFG.from_kernels([KernelSpec("srad", 134_217_728)] * 2)
        result = Simulator(system, lookup).run(dfg, MET())
        assert {e.processor for e in result.schedule} == {"gpu0", "gpu1"}
        assert result.makespan == pytest.approx(1600.0)

    def test_single_processor_system_serializes_everything(self):
        system = CPU_GPU_FPGA(n_cpu=1, n_gpu=0, n_fpga=0)
        lookup = paper_lookup_table()
        dfg = DFG.from_kernels([KernelSpec("nw", 16_777_216)] * 3)
        result = Simulator(system, lookup).run(dfg, APT(alpha=4.0))
        assert result.makespan == pytest.approx(3 * 112.0)

    def test_heterogeneous_link_overrides(self):
        from repro.core.system import Processor, ProcessorType, SystemConfig

        system = SystemConfig(
            [
                Processor("cpu0", ProcessorType.CPU),
                Processor("gpu0", ProcessorType.GPU),
            ],
            transfer_rate_gbps=4.0,
            link_overrides={("cpu0", "gpu0"): 0.004},  # pathologically slow
        )
        lookup = paper_lookup_table()
        dfg = DFG.from_kernels(
            [KernelSpec("nw", 16_777_216), KernelSpec("srad", 134_217_728)],
            dependencies=[(0, 1)],
        )
        result = Simulator(system, lookup).run(dfg, MET())
        # srad's inbound transfer over the slow link dominates its runtime
        assert result.schedule[1].transfer_time > 10_000


class TestMixedWorkflow:
    def test_type2_stream_through_all_policy_kinds(self):
        system = CPU_GPU_FPGA()
        lookup = paper_lookup_table()
        dfg = make_type2_dfg(30, rng=np.random.default_rng(3))
        sim = Simulator(system, lookup)
        results = {
            "apt": sim.run(dfg, APT(alpha=4.0)),
            "met": sim.run(dfg, MET()),
            "heft": sim.run(dfg, HEFT()),
        }
        for result in results.values():
            result.schedule.validate(dfg)
        # all policies executed the same kernels
        spans = {name: r.makespan for name, r in results.items()}
        assert all(v > 0 for v in spans.values())

    def test_calibrated_table_end_to_end(self):
        from repro.kernels.calibration import Calibrator

        table = Calibrator(repeats=1, warmup=0).calibrate(
            {"matmul": [64 * 64], "cholesky": [64 * 64]}
        )
        dfg = DFG.from_kernels(
            [KernelSpec("matmul", 64 * 64), KernelSpec("cholesky", 64 * 64)]
        )
        result = Simulator(CPU_GPU_FPGA(), table).run(dfg, APT(alpha=4.0))
        assert result.makespan > 0

    def test_metrics_are_self_consistent(self):
        system = CPU_GPU_FPGA()
        lookup = paper_lookup_table()
        dfg = make_type1_dfg(15, rng=np.random.default_rng(9))
        result = Simulator(system, lookup).run(dfg, APT(alpha=4.0))
        m = result.metrics
        for usage in m.usage.values():
            assert usage.busy_time + usage.idle_time == pytest.approx(m.makespan)
        assert m.total_compute_time == pytest.approx(
            sum(e.exec_time for e in result.schedule)
        )
