"""The compiled kernel layer: registry contract, jit resolution, twins.

The jit sources in :mod:`repro.core._kernels` are plain Python, so the
pairwise fallback-vs-source differential tests here run (and can fail)
*without* numba — numba only changes how fast the source twin runs,
never what it computes.  End-to-end jit parity is pinned by the
equivalence suite and the differential fuzzer; this file pins the twins
directly on adversarial inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import _kernels
from repro.core._kernels import (
    JIT_ENV_VAR,
    KERNELS,
    KernelSet,
    get_kernels,
    jit_status,
    numba_available,
    resolve_jit,
)


# ----------------------------------------------------------------------
# registry contract (runtime side of the jit-kernel-pairs checks rule)
# ----------------------------------------------------------------------
class TestRegistry:
    def test_every_entry_is_a_defined_twin_pair(self):
        for name, (fallback, src) in KERNELS.items():
            assert fallback is getattr(_kernels, f"{name}_py")
            assert src is getattr(_kernels, f"_{name}_src")

    def test_no_orphan_jit_sources(self):
        registered = {fns[1].__name__ for fns in KERNELS.values()}
        orphans = [
            n
            for n in dir(_kernels)
            if n.startswith("_") and n.endswith("_src") and n not in registered
        ]
        assert not orphans, f"jit sources outside the KERNELS registry: {orphans}"

    def test_kernel_set_covers_the_registry(self):
        ks = get_kernels(False)
        assert ks.jit is False
        for name in KERNELS:
            assert callable(getattr(ks, name))
        # singleton: the fallback set is built once
        assert get_kernels(False) is ks

    def test_jitted_set_degrades_to_fallback_without_numba(self):
        ks = get_kernels(True)
        if numba_available():
            assert ks.jit is True
        else:
            assert ks is get_kernels(False)

    def test_kernel_set_slots_match_registry(self):
        assert set(KernelSet.__slots__) == {"jit", *KERNELS}


# ----------------------------------------------------------------------
# jit resolution
# ----------------------------------------------------------------------
class TestResolveJit:
    def test_falsey_selectors_force_fallback(self, monkeypatch):
        monkeypatch.delenv(JIT_ENV_VAR, raising=False)
        for selector in ("0", "off", "false", "no", False):
            assert resolve_jit(selector) is False

    def test_truey_and_auto_follow_numba_availability(self, monkeypatch):
        monkeypatch.delenv(JIT_ENV_VAR, raising=False)
        expected = numba_available()
        for selector in ("1", "on", "true", "yes", "auto", True, None):
            assert resolve_jit(selector) is expected

    def test_env_var_is_the_default(self, monkeypatch):
        monkeypatch.setenv(JIT_ENV_VAR, "off")
        assert resolve_jit(None) is False
        monkeypatch.setenv(JIT_ENV_VAR, "on")
        assert resolve_jit(None) is numba_available()

    def test_explicit_selector_beats_env(self, monkeypatch):
        monkeypatch.setenv(JIT_ENV_VAR, "on")
        assert resolve_jit("off") is False

    def test_unknown_selector_raises(self):
        with pytest.raises(ValueError, match="jit selector"):
            resolve_jit("fastpls")

    def test_status_reports_request_and_resolution(self, monkeypatch):
        monkeypatch.setenv(JIT_ENV_VAR, "off")
        status = jit_status()
        assert status["requested"] == "off"
        assert status["active"] is False
        assert status["numba_available"] is numba_available()
        assert jit_status("on")["requested"] == "on"


# ----------------------------------------------------------------------
# differential twins: fallback vs jit source on seeded random inputs
# ----------------------------------------------------------------------
def _twins(name):
    fallback, src = KERNELS[name]
    return fallback, src


class TestCsrPropagateTwins:
    @pytest.mark.parametrize("n_succs", [0, 1, 7, 31, 32, 200, 1000])
    def test_twins_agree(self, n_succs):
        fallback, src = _twins("csr_propagate")
        rng = np.random.default_rng(n_succs)
        n_kernels = 64
        succs = rng.integers(0, n_kernels, size=n_succs).astype(np.int64)
        # counts >= occurrence count so nothing goes negative; some hit 0
        base = np.zeros(n_kernels, dtype=np.int32)
        np.add.at(base, succs, 1)
        extra = rng.integers(0, 2, size=n_kernels).astype(np.int32)
        rp_a = (base + extra).copy()
        rp_b = rp_a.copy()
        out_a = fallback(rp_a, succs)
        out_b = src(rp_b, succs)
        assert np.array_equal(rp_a, rp_b)
        assert list(out_a) == list(out_b)
        # emission order == last-occurrence order of the zero-hitters
        assert len(set(out_a.tolist())) == len(out_a)

    def test_duplicate_successor_emits_once_at_last_occurrence(self):
        fallback, src = _twins("csr_propagate")
        # kernel 5 appears 40 times; rp starts at 40 so it zeroes at the
        # last occurrence — both twins must emit it exactly once.
        succs = np.array([5] * 40 + [3], dtype=np.int64)
        rp_a = np.zeros(8, dtype=np.int32)
        rp_a[5], rp_a[3] = 40, 1
        rp_b = rp_a.copy()
        assert list(fallback(rp_a, succs)) == [5, 3]
        assert list(src(rp_b, succs)) == [5, 3]
        assert np.array_equal(rp_a, rp_b)


class TestAptScanTwins:
    @pytest.mark.parametrize("seed", range(20))
    def test_twins_agree(self, seed):
        fallback, src = _twins("apt_scan")
        rng = np.random.default_rng(seed)
        n_cand = int(rng.integers(1, 12))
        n_idle = int(rng.integers(1, 8))
        n_cats = 4
        Cm = rng.uniform(1.0, 100.0, size=(n_cand, n_idle))
        Cm[rng.random(size=Cm.shape) < 0.4] = np.inf  # threshold mask
        bc = rng.integers(-1, n_cats, size=n_cand).astype(np.int64)
        idle_cats = rng.integers(0, n_cats, size=n_idle).astype(np.int64)
        i_a, j_a, alt_a = fallback(Cm, bc, idle_cats, n_cats)
        i_b, j_b, alt_b = src(Cm, bc, idle_cats, n_cats)
        assert list(map(int, i_a)) == list(map(int, i_b))
        assert list(map(int, j_a)) == list(map(int, j_b))
        assert list(map(bool, alt_a)) == list(map(bool, alt_b))

    def test_ties_keep_declaration_order(self):
        fallback, src = _twins("apt_scan")
        # two idle processors with equal cost: strict < must keep the
        # first (declaration-order) column in both twins
        Cm = np.array([[7.0, 7.0]])
        bc = np.array([-1], dtype=np.int64)
        idle_cats = np.array([1, 2], dtype=np.int64)
        for fn in (fallback, src):
            i, j, alt = fn(Cm, bc, idle_cats, 4)
            assert (list(map(int, i)), list(map(int, j))) == ([0], [0])
            assert list(map(bool, alt)) == [True]


class TestFillTransferRowsTwins:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("mode_sum", [True, False])
    def test_twins_agree(self, seed, mode_sum):
        fallback, src = _twins("fill_transfer_rows")
        rng = np.random.default_rng(seed)
        n_proc = int(rng.integers(2, 6))
        n_rows = int(rng.integers(1, 8))
        div = rng.uniform(0.5, 8.0, size=(n_proc, n_proc))
        np.fill_diagonal(div, np.inf)
        lat = rng.uniform(0.0, 2.0, size=(n_proc, n_proc))
        np.fill_diagonal(lat, 0.0)
        preds_per_row = [int(rng.integers(0, 5)) for _ in range(n_rows)]
        srcs = np.concatenate(
            [rng.integers(0, n_proc, size=k) for k in preds_per_row]
            or [np.empty(0, dtype=np.int64)]
        ).astype(np.int64)
        offs = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(preds_per_row, out=offs[1:])
        rows = np.arange(n_rows, dtype=np.int64)
        nbytes = rng.uniform(1e3, 1e7, size=n_rows)
        out_a = np.full((n_rows, n_proc), -1.0)
        out_b = np.full((n_rows, n_proc), -1.0)
        fallback(out_a, rows, nbytes, srcs, offs, div, lat, mode_sum)
        src(out_b, rows, nbytes, srcs, offs, div, lat, mode_sum)
        # bit-for-bit: the twins must fold in the same operand order
        assert np.array_equal(out_a, out_b)

    def test_empty_predecessor_segment_zeroes_the_row(self):
        fallback, src = _twins("fill_transfer_rows")
        div = np.array([[np.inf, 2.0], [2.0, np.inf]])
        lat = np.zeros((2, 2))
        rows = np.array([0], dtype=np.int64)
        offs = np.array([0, 0], dtype=np.int64)
        srcs = np.empty(0, dtype=np.int64)
        nbytes = np.array([1e6])
        for fn, mode_sum in ((fallback, True), (src, True), (fallback, False), (src, False)):
            out = np.full((1, 2), -1.0)
            fn(out, rows, nbytes, srcs, offs, div, lat, mode_sum)
            assert np.array_equal(out, np.zeros((1, 2)))


# ----------------------------------------------------------------------
# numba parity (runs only where numba is installed — the CI jit leg)
# ----------------------------------------------------------------------
@pytest.mark.skipif(not numba_available(), reason="numba not installed")
class TestCompiledParity:
    def test_compiled_csr_propagate_matches_fallback(self):
        ks = get_kernels(True)
        fallback = KERNELS["csr_propagate"][0]
        rng = np.random.default_rng(99)
        succs = rng.integers(0, 50, size=500).astype(np.int64)
        rp_a = np.zeros(50, dtype=np.int32)
        np.add.at(rp_a, succs, 1)
        rp_b = rp_a.copy()
        assert list(fallback(rp_a, succs)) == list(ks.csr_propagate(rp_b, succs))
        assert np.array_equal(rp_a, rp_b)


# ----------------------------------------------------------------------
# engine integration: profiler counters + jit plumbed through Simulator
# ----------------------------------------------------------------------
class TestProfileCounters:
    def _run(self, **sim_kwargs):
        from repro.core.simulator import Simulator
        from repro.core.system import CPU_GPU_FPGA
        from repro.data.paper_tables import paper_lookup_table
        from repro.graphs.generators import make_type1_dfg
        from repro.policies.registry import get_policy

        dfg = make_type1_dfg(30, rng=np.random.default_rng(3))
        sim = Simulator(
            CPU_GPU_FPGA(), paper_lookup_table(), backend="array", **sim_kwargs
        )
        result = sim.run(dfg, get_policy("apt"))
        return sim, result, len(dfg)

    def test_counters_shape(self):
        sim, _result, n = self._run()
        prof = sim.last_profile
        assert prof is not None
        assert prof["backend"] == "array"
        assert prof["n_completed"] == n
        assert prof["n_epochs"] >= 1
        assert prof["n_events"] >= prof["n_epochs"]
        assert prof["events_per_epoch"] >= 1.0
        assert prof["jit_active"] is resolve_jit(None)
        # submitted-at-once run: nothing retires, every row stays live
        assert prof["rows_in_use"] == n
        assert prof["rows_released"] == 0
        assert "phase_ms" not in prof  # no profiler attached

    def test_profile_flag_adds_phase_wallclock(self):
        sim, _result, _n = self._run(profile=True)
        prof = sim.last_profile
        assert prof is not None and "phase_ms" in prof
        assert set(prof["phase_ms"]) <= {"fixpoint", "events"}

    def test_jit_flag_is_recorded(self):
        sim, _result, _n = self._run(jit="off")
        assert sim.last_profile["jit_active"] is False

    def test_process_totals_accumulate(self):
        from repro import profiling

        profiling.reset_engine_totals()
        self._run()
        totals = profiling.engine_totals()
        assert totals["runs"] == 1
        assert totals["n_completed"] == 30
        self._run()
        assert profiling.engine_totals()["runs"] == 2
