"""Unit tests for the real kernel implementations."""

import numpy as np
import pytest

from repro.kernels import kernel_registry
from repro.kernels.base import Kernel, KernelRegistry
from repro.kernels.bfs import BFSKernel
from repro.kernels.cholesky import CholeskyKernel
from repro.kernels.dwarfs import DWARF_DESCRIPTIONS, Dwarf, dwarfs_of_application
from repro.kernels.gem import GEMKernel, gem_potential_reference
from repro.kernels.matinv import MatInvKernel
from repro.kernels.matmul import MatMulKernel
from repro.kernels.nw import NeedlemanWunschKernel, nw_score_matrix_reference
from repro.kernels.srad import SRADKernel


class TestRegistry:
    def test_all_seven_kernels_registered(self):
        assert set(kernel_registry.names()) == {
            "matmul", "matinv", "cholesky", "nw", "bfs", "srad", "gem",
        }

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            kernel_registry.get("ghost")

    def test_duplicate_registration_rejected(self):
        reg = KernelRegistry()
        reg.register(MatMulKernel())
        with pytest.raises(ValueError):
            reg.register(MatMulKernel())

    def test_registry_contains_and_len(self):
        assert "bfs" in kernel_registry
        assert len(kernel_registry) == 7


class TestDwarfs:
    def test_thirteen_dwarfs(self):
        assert len(Dwarf) == 13
        assert len(DWARF_DESCRIPTIONS) == 13

    def test_kernel_dwarf_classification_matches_table5(self):
        assert kernel_registry.get("nw").dwarf is Dwarf.DYNAMIC_PROGRAMMING
        assert kernel_registry.get("bfs").dwarf is Dwarf.GRAPH_TRAVERSAL
        assert kernel_registry.get("srad").dwarf is Dwarf.STRUCTURED_GRIDS
        assert kernel_registry.get("gem").dwarf is Dwarf.N_BODY
        for name in ("cholesky", "matmul", "matinv"):
            assert kernel_registry.get(name).dwarf is Dwarf.DENSE_LINEAR_ALGEBRA

    def test_application_dwarfs_table1(self):
        assert dwarfs_of_application("backpropagation") == (
            Dwarf.DENSE_LINEAR_ALGEBRA,
            Dwarf.UNSTRUCTURED_GRIDS,
        )
        with pytest.raises(KeyError):
            dwarfs_of_application("ghost_app")


class TestSquareSide:
    def test_accepts_perfect_squares(self):
        assert Kernel.square_side(698_896) == 836  # the paper's own example

    def test_rejects_non_squares(self):
        with pytest.raises(ValueError):
            Kernel.square_side(698_897)


class TestMatMul:
    def test_correct_product_verifies(self, rng):
        k = MatMulKernel()
        inputs = k.prepare(64 * 64, rng)
        out = k.run(**inputs)
        assert np.allclose(out, inputs["a"] @ inputs["b"])
        assert k.verify(out, **inputs)

    def test_wrong_product_fails_verification(self, rng):
        k = MatMulKernel()
        inputs = k.prepare(64 * 64, rng)
        out = k.run(**inputs)
        assert not k.verify(out + 1.0, **inputs)
        assert not k.verify(out[:10], **inputs)


class TestMatInv:
    def test_inverse_verifies(self, rng):
        k = MatInvKernel()
        inputs = k.prepare(50 * 50, rng)
        out = k.run(**inputs)
        assert k.verify(out, **inputs)

    def test_garbage_fails(self, rng):
        k = MatInvKernel()
        inputs = k.prepare(50 * 50, rng)
        assert not k.verify(np.zeros((50, 50)), **inputs)


class TestCholesky:
    def test_factor_verifies(self, rng):
        k = CholeskyKernel()
        inputs = k.prepare(40 * 40, rng)
        out = k.run(**inputs)
        assert k.verify(out, **inputs)

    def test_output_is_upper_triangular_per_eq9(self, rng):
        k = CholeskyKernel()
        inputs = k.prepare(30 * 30, rng)
        u = k.run(**inputs)
        assert np.allclose(u, np.triu(u))
        assert np.allclose(u.T @ u, inputs["a"])

    def test_lower_factor_fails_verification(self, rng):
        k = CholeskyKernel()
        inputs = k.prepare(30 * 30, rng)
        u = k.run(**inputs)
        assert not k.verify(u.T, **inputs)  # lower-triangular variant


class TestNeedlemanWunsch:
    def test_matches_reference_dp(self, rng):
        k = NeedlemanWunschKernel()
        inputs = k.prepare(32 * 32, rng)
        out = k.run(**inputs)
        ref = nw_score_matrix_reference(
            inputs["seq1"], inputs["seq2"], k.match, k.mismatch, k.gap
        )
        assert np.array_equal(out, ref)
        assert k.verify(out, **inputs)

    def test_identical_sequences_score_perfectly(self):
        k = NeedlemanWunschKernel(match=2, mismatch=-1, gap=1)
        seq = np.array([0, 1, 2, 3, 0, 1], dtype=np.int8)
        out = k.run(seq1=seq, seq2=seq)
        assert out[-1, -1] == 2 * len(seq)

    def test_gap_only_alignment(self):
        k = NeedlemanWunschKernel(match=2, mismatch=-1, gap=1)
        a = np.array([0], dtype=np.int8)
        b = np.array([1], dtype=np.int8)
        # best of: mismatch (-1) vs two gaps (-2)
        assert k.run(seq1=a, seq2=b)[-1, -1] == -1

    def test_tampered_matrix_fails(self, rng):
        k = NeedlemanWunschKernel()
        inputs = k.prepare(16 * 16, rng)
        out = k.run(**inputs)
        out[5, 5] += 1
        assert not k.verify(out, **inputs)

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            NeedlemanWunschKernel(gap=-1)


class TestBFS:
    def test_levels_verify(self, rng):
        k = BFSKernel()
        inputs = k.prepare(800, rng)
        out = k.run(**inputs)
        assert k.verify(out, **inputs)

    def test_source_is_level_zero_everything_reached(self, rng):
        k = BFSKernel()
        inputs = k.prepare(500, rng)
        out = k.run(**inputs)
        assert out[0] == 0
        # the generator chains all vertices, so everything is reachable
        assert np.all(out >= 0)

    def test_chain_graph_levels_are_distances(self):
        import scipy.sparse as sp

        k = BFSKernel()
        n = 10
        adj = sp.csr_matrix(
            (np.ones(n - 1), (np.arange(n - 1), np.arange(1, n))), shape=(n, n)
        )
        out = k.run(adj=adj, source=0)
        assert np.array_equal(out, np.arange(n))

    def test_corrupted_levels_fail(self, rng):
        k = BFSKernel()
        inputs = k.prepare(400, rng)
        out = k.run(**inputs)
        bad = out.copy()
        bad[bad == bad.max()] += 5  # skip levels
        assert not k.verify(bad, **inputs)

    def test_needs_positive_edges(self, rng):
        with pytest.raises(ValueError):
            BFSKernel().prepare(0, rng)


class TestSRAD:
    def test_output_verifies(self, rng):
        k = SRADKernel()
        inputs = k.prepare(64 * 64, rng)
        out = k.run(**inputs)
        assert k.verify(out, **inputs)

    def test_reduces_background_speckle(self, rng):
        k = SRADKernel(n_iterations=8)
        inputs = k.prepare(64 * 64, rng)
        out = k.run(**inputs)
        img = inputs["image"]
        q = 8
        cv_in = np.std(img[:q, :q]) / np.mean(img[:q, :q])
        cv_out = np.std(out[:q, :q]) / np.mean(out[:q, :q])
        assert cv_out < cv_in

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SRADKernel(n_iterations=0)
        with pytest.raises(ValueError):
            SRADKernel(time_step=0.5)

    def test_preserves_shape_and_finiteness(self, rng):
        k = SRADKernel()
        inputs = k.prepare(32 * 32, rng)
        out = k.run(**inputs)
        assert out.shape == (32, 32)
        assert np.all(np.isfinite(out))


class TestGEM:
    def test_matches_reference(self, rng):
        k = GEMKernel()
        inputs = k.prepare(900, rng)
        out = k.run(**inputs)
        ref = gem_potential_reference(
            inputs["atoms"], inputs["charges"], inputs["vertices"]
        )
        assert np.allclose(out, ref)
        assert k.verify(out, **inputs)

    def test_interaction_count_approximates_data_size(self, rng):
        k = GEMKernel()
        inputs = k.prepare(10_000, rng)
        n = len(inputs["atoms"]) * len(inputs["vertices"])
        assert 0.5 * 10_000 <= n <= 1.5 * 10_000

    def test_single_charge_coulomb_law(self):
        k = GEMKernel()
        atoms = np.array([[0.0, 0.0, 0.0]])
        charges = np.array([2.0])
        verts = np.array([[2.0, 0.0, 0.0]])
        out = k.run(atoms=atoms, charges=charges, vertices=verts)
        assert out[0] == pytest.approx(1.0)  # q/r = 2/2

    def test_blocked_equals_direct(self, rng):
        # The blocked pairwise evaluation must be exact, not approximate.
        k = GEMKernel()
        inputs = k.prepare(2_500, rng)
        out = k.run(**inputs)
        diff = inputs["vertices"][:, None, :] - inputs["atoms"][None, :, :]
        direct = (inputs["charges"] / np.sqrt((diff**2).sum(axis=2))).sum(axis=1)
        assert np.allclose(out, direct)


class TestExecuteHelper:
    def test_execute_runs_end_to_end(self, rng):
        out = MatMulKernel().execute(16 * 16, rng)
        assert out.shape == (16, 16)
