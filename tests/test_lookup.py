"""Unit tests for the execution-time lookup table."""

import pytest

from repro.core.lookup import KernelNotFoundError, LookupEntry, LookupTable
from repro.core.system import ProcessorType

CPU, GPU, FPGA = ProcessorType.CPU, ProcessorType.GPU, ProcessorType.FPGA


def table(entries) -> LookupTable:
    return LookupTable([LookupEntry(*e) for e in entries])


@pytest.fixture
def two_point_table() -> LookupTable:
    # Power-law series: t = 1e-3 * size on CPU, flat on GPU.
    return table(
        [
            ("k", 1_000, CPU, 1.0),
            ("k", 100_000, CPU, 100.0),
            ("k", 1_000, GPU, 5.0),
            ("k", 100_000, GPU, 5.0),
        ]
    )


class TestConstruction:
    def test_entry_validation(self):
        with pytest.raises(ValueError):
            LookupEntry("k", 0, CPU, 1.0)
        with pytest.raises(ValueError):
            LookupEntry("k", 10, CPU, 0.0)

    def test_duplicate_points_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            table([("k", 10, CPU, 1.0), ("k", 10, CPU, 2.0)])

    def test_kernels_and_ptypes_inventory(self, two_point_table):
        assert two_point_table.kernels == ("k",)
        assert set(two_point_table.ptypes) == {CPU, GPU}

    def test_len_counts_points(self, two_point_table):
        assert len(two_point_table) == 4


class TestExactLookup:
    def test_exact_measurement_returned(self, two_point_table):
        assert two_point_table.time("k", 1_000, CPU) == 1.0
        assert two_point_table.time("k", 100_000, GPU) == 5.0

    def test_unknown_kernel_raises(self, two_point_table):
        with pytest.raises(KernelNotFoundError):
            two_point_table.time("ghost", 1_000, CPU)

    def test_unknown_ptype_series_raises(self, two_point_table):
        with pytest.raises(KernelNotFoundError):
            two_point_table.time("k", 1_000, FPGA)


class TestInterpolation:
    def test_log_log_interpolation_between_points(self, two_point_table):
        # The CPU series is exactly t = size/1000 (a power law with
        # exponent 1), so log-log interpolation must be exact.
        assert two_point_table.time("k", 10_000, CPU) == pytest.approx(10.0)

    def test_interpolation_of_flat_series(self, two_point_table):
        assert two_point_table.time("k", 50_000, GPU) == pytest.approx(5.0)

    def test_extrapolation_above_range_scales_linearly(self, two_point_table):
        assert two_point_table.time("k", 200_000, CPU) == pytest.approx(200.0)

    def test_extrapolation_below_range_scales_linearly(self, two_point_table):
        assert two_point_table.time("k", 500, CPU) == pytest.approx(0.5)

    def test_single_point_series_scales(self):
        t = table([("k", 100, CPU, 10.0)])
        assert t.time("k", 200, CPU) == pytest.approx(20.0)
        assert t.time("k", 50, CPU) == pytest.approx(5.0)

    def test_interpolation_disabled_raises_on_miss(self):
        t = LookupTable([LookupEntry("k", 100, CPU, 1.0)], interpolate=False)
        with pytest.raises(KeyError):
            t.time("k", 150, CPU)
        assert t.time("k", 100, CPU) == 1.0

    def test_interpolated_value_between_endpoints(self, two_point_table):
        v = two_point_table.time("k", 31_623, CPU)  # ~sqrt decade midpoint
        assert 1.0 < v < 100.0

    def test_nonpositive_size_rejected(self, two_point_table):
        with pytest.raises(ValueError):
            two_point_table.time("k", -5, CPU)


class TestQueries:
    def test_best_processor(self, synth_lookup):
        ptype, t = synth_lookup.best_processor("fast_gpu", 1_000_000, (CPU, GPU, FPGA))
        assert ptype is GPU and t == 10.0

    def test_best_processor_tie_breaks_by_order(self):
        t = table([("k", 10, CPU, 5.0), ("k", 10, GPU, 5.0)])
        assert t.best_processor("k", 10, (GPU, CPU))[0] is GPU
        assert t.best_processor("k", 10, (CPU, GPU))[0] is CPU

    def test_best_processor_empty_ptypes(self, synth_lookup):
        with pytest.raises(ValueError):
            synth_lookup.best_processor("fast_gpu", 1_000_000, ())

    def test_times_across(self, synth_lookup):
        times = synth_lookup.times_across("fast_cpu", 1_000_000, (CPU, GPU, FPGA))
        assert times == {CPU: 10.0, GPU: 100.0, FPGA: 50.0}

    def test_heterogeneity_ratio(self, synth_lookup):
        assert synth_lookup.heterogeneity("fast_cpu", 1_000_000, (CPU, GPU, FPGA)) == 10.0
        assert synth_lookup.heterogeneity("uniform", 1_000_000, (CPU, GPU, FPGA)) == 1.0

    def test_sizes_for(self, two_point_table):
        assert two_point_table.sizes_for("k") == (1_000, 100_000)
        assert two_point_table.sizes_for("k", CPU) == (1_000, 100_000)

    def test_sizes_for_unknown_kernel(self, two_point_table):
        with pytest.raises(KernelNotFoundError):
            two_point_table.sizes_for("ghost")

    def test_has_kernel(self, two_point_table):
        assert two_point_table.has_kernel("k")
        assert not two_point_table.has_kernel("ghost")


class TestSerialization:
    def test_records_round_trip(self, synth_lookup):
        records = synth_lookup.to_records()
        rebuilt = LookupTable.from_records(records)
        for rec in records:
            assert rebuilt.time(
                rec["kernel"], rec["data_size"], ProcessorType(rec["ptype"])
            ) == pytest.approx(rec["time_ms"])

    def test_json_round_trip(self, synth_lookup, tmp_path):
        path = tmp_path / "lookup.json"
        synth_lookup.to_json(path)
        rebuilt = LookupTable.from_json(path)
        assert len(rebuilt) == len(synth_lookup)
        assert rebuilt.kernels == synth_lookup.kernels

    def test_merged_with_disjoint_tables(self):
        a = table([("a", 10, CPU, 1.0)])
        b = table([("b", 10, CPU, 2.0)])
        merged = a.merged_with(b)
        assert merged.time("a", 10, CPU) == 1.0
        assert merged.time("b", 10, CPU) == 2.0

    def test_merged_with_clashing_tables_rejected(self):
        a = table([("a", 10, CPU, 1.0)])
        b = table([("a", 10, CPU, 2.0)])
        with pytest.raises(ValueError):
            a.merged_with(b)

    def test_entries_iterates_all_points(self, synth_lookup):
        assert len(list(synth_lookup.entries())) == len(synth_lookup)
