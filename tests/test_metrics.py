"""Unit tests for metrics computation (λ stats, processor usage)."""

import math

import pytest

from repro.core.metrics import (
    LambdaStats,
    ProcessorUsage,
    compute_metrics,
)
from repro.core.schedule import Schedule
from repro.core.system import CPU_GPU_FPGA
from tests.test_schedule import entry


class TestLambdaStats:
    def test_from_delays_matches_eq11_eq12(self):
        # Eq. (11): avg = total / N; eq. (12): population stddev.
        delays = [2.0, 4.0, 6.0]
        st = LambdaStats.from_delays(delays)
        assert st.total == 12.0
        assert st.count == 3
        assert st.average == pytest.approx(4.0)
        assert st.stddev == pytest.approx(math.sqrt(8.0 / 3.0))

    def test_zero_delays_not_counted(self):
        # N counts only occurrences where a delay actually happened.
        st = LambdaStats.from_delays([0.0, 0.0, 3.0])
        assert st.count == 1
        assert st.total == 3.0
        assert st.average == 3.0
        assert st.stddev == 0.0

    def test_empty(self):
        st = LambdaStats.from_delays([])
        assert st.total == 0.0 and st.count == 0
        assert st.average == 0.0 and st.stddev == 0.0

    def test_numerical_noise_ignored(self):
        st = LambdaStats.from_delays([1e-12, 5.0])
        assert st.count == 1


class TestProcessorUsage:
    def test_busy_and_utilization(self):
        u = ProcessorUsage("cpu0", compute_time=30.0, transfer_time=10.0, idle_time=60.0)
        assert u.busy_time == 40.0
        assert u.utilization(100.0) == pytest.approx(0.4)
        assert u.utilization(0.0) == 0.0


class TestComputeMetrics:
    def test_full_accounting(self):
        system = CPU_GPU_FPGA()
        s = Schedule(
            [
                # cpu0: transfer 2ms then exec 8ms
                entry(kid=0, proc="cpu0", ready=0.0, transfer=0.0, start=2.0, finish=10.0),
                # gpu0: exec from 5 to 20 after ready at 1 (lambda = 4)
                entry(kid=1, proc="gpu0", ready=1.0, assign=5.0, start=5.0, finish=20.0),
            ]
        )
        m = compute_metrics(s, system)
        assert m.makespan == 20.0
        assert m.usage["cpu0"].compute_time == pytest.approx(8.0)
        assert m.usage["cpu0"].transfer_time == pytest.approx(2.0)
        assert m.usage["cpu0"].idle_time == pytest.approx(10.0)
        assert m.usage["gpu0"].compute_time == pytest.approx(15.0)
        assert m.usage["fpga0"].idle_time == pytest.approx(20.0)
        # λ (arrival-anchored): kernel 0 starts at 2, kernel 1 at 5.
        assert m.lambda_stats.total == pytest.approx(7.0)
        assert m.lambda_stats.count == 2
        # queue wait (ready-anchored): 2 - 0 = 2 and 5 - 1 = 4.
        assert m.queue_wait_stats.total == pytest.approx(6.0)
        assert m.n_kernels == 2

    def test_totals(self):
        system = CPU_GPU_FPGA()
        s = Schedule([entry(kid=0, start=0.0, finish=10.0)])
        m = compute_metrics(s, system)
        assert m.total_compute_time == pytest.approx(10.0)
        assert m.total_transfer_time == 0.0
        # two processors fully idle + the busy one has zero idle
        assert m.total_idle_time == pytest.approx(20.0)
        assert m.mean_utilization() == pytest.approx(1.0 / 3.0)

    def test_empty_schedule(self):
        system = CPU_GPU_FPGA()
        m = compute_metrics(Schedule(), system)
        assert m.makespan == 0.0
        assert m.mean_utilization() == 0.0


# ----------------------------------------------------------------------
# service-level (open-system) accounting
# ----------------------------------------------------------------------
from repro.core.metrics import (  # noqa: E402
    AppServiceRecord,
    AppSpan,
    MetricsAccumulator,
    ServiceAccumulator,
    ServiceMetrics,
    compute_service_metrics,
)


def app_record(
    i=0, arrival=0.0, first=10.0, finish=30.0, n=2, compute=15.0, isolated=20.0
) -> AppServiceRecord:
    return AppServiceRecord(
        app_index=i,
        arrival_ms=arrival,
        n_kernels=n,
        first_start_ms=first,
        finish_ms=finish,
        compute_ms=compute,
        isolated_ms=isolated,
    )


class TestAppSpan:
    def test_validation(self):
        with pytest.raises(ValueError):
            AppSpan(0.0, 5, 5)
        with pytest.raises(ValueError):
            AppSpan(-1.0, 0, 2)
        assert AppSpan(1.0, 3, 7).n_kernels == 4


class TestAppServiceRecord:
    def test_derived_quantities(self):
        rec = app_record(arrival=5.0, first=12.0, finish=45.0, isolated=20.0)
        assert rec.response_ms == pytest.approx(40.0)
        assert rec.queueing_ms == pytest.approx(7.0)
        assert rec.slowdown == pytest.approx(2.0)

    def test_zero_isolated_bound_degrades_to_unit_slowdown(self):
        assert app_record(isolated=0.0).slowdown == 1.0


class TestServiceMetrics:
    def test_aggregates(self):
        records = [
            app_record(i=0, arrival=0.0, first=0.0, finish=10.0, isolated=10.0),
            app_record(i=1, arrival=0.0, first=5.0, finish=30.0, isolated=10.0),
        ]
        sm = ServiceMetrics.from_records(records)
        assert sm.n_applications == 2
        assert sm.horizon_ms == 30.0
        assert sm.mean_response_ms == pytest.approx(20.0)
        assert sm.max_response_ms == pytest.approx(30.0)
        assert sm.p95_response_ms == pytest.approx(30.0)
        assert sm.mean_slowdown == pytest.approx(2.0)
        assert sm.throughput_apps_per_s == pytest.approx(2 / 0.03)

    def test_empty(self):
        sm = ServiceMetrics.from_records([])
        assert sm.mean_response_ms == 0.0
        assert sm.throughput_apps_per_s == 0.0
        assert sm.rolling(10.0) == ()

    def test_rolling_window_counts(self):
        records = [
            app_record(i=0, arrival=1.0, first=1.0, finish=9.0),
            app_record(i=1, arrival=2.0, first=3.0, finish=19.0),
            app_record(i=2, arrival=25.0, first=25.0, finish=29.0),
        ]
        windows = ServiceMetrics.from_records(records).rolling(10.0)
        assert len(windows) == 3
        assert [w.arrived for w in windows] == [2, 0, 1]
        assert [w.completed for w in windows] == [1, 1, 1]
        assert windows[0].throughput_per_s == pytest.approx(100.0)

    def test_rolling_rejects_bad_window(self):
        with pytest.raises(ValueError):
            ServiceMetrics.from_records([app_record()]).rolling(0.0)


class TestServiceAccumulator:
    def test_duplicate_registration_rejected(self):
        acc = ServiceAccumulator()
        acc.register_app(0, 0.0, 1, 1.0)
        with pytest.raises(ValueError):
            acc.register_app(0, 0.0, 1, 1.0)

    def test_batch_equals_incremental(self):
        entries = [
            entry(kid=0, transfer=0.0, start=1.0, finish=5.0),
            entry(kid=1, transfer=5.0, start=5.0, finish=9.0, proc="gpu0"),
            entry(kid=2, transfer=9.0, start=9.0, finish=12.0),
        ]
        spans = [AppSpan(0.0, 0, 2), AppSpan(0.0, 2, 3)]
        batch = compute_service_metrics(entries, spans)
        acc = ServiceAccumulator()
        acc.register_app(0, 0.0, 2, 0.0)
        acc.register_app(1, 0.0, 1, 0.0)
        for e in entries[:2]:
            acc.observe(0, e)
        acc.observe(1, entries[2])
        assert acc.finalize() == batch


class TestMetricsAccumulator:
    def test_matches_compute_metrics(self):
        system = CPU_GPU_FPGA()
        entries = [
            entry(kid=0, transfer=0.0, start=2.0, finish=10.0),
            entry(kid=1, proc="gpu0", transfer=1.0, start=1.0, finish=4.0),
            entry(kid=2, transfer=10.0, start=10.0, finish=12.0),
        ]
        schedule = Schedule(entries)
        acc = MetricsAccumulator(system)
        for e in entries:
            acc.observe(e)
        assert acc.finalize() == compute_metrics(schedule, system)


class TestRollingUtilization:
    def test_fully_busy_single_processor_window(self):
        from repro.core.metrics import rolling_utilization

        system = CPU_GPU_FPGA()  # 3 processors
        entries = [entry(kid=0, transfer=0.0, start=0.0, finish=10.0)]
        rows = rolling_utilization(entries, system, window_ms=10.0)
        assert len(rows) == 1
        t_lo, t_hi, util = rows[0]
        assert (t_lo, t_hi) == (0.0, 10.0)
        # one of three processors busy the whole window
        assert util == pytest.approx(1.0 / 3.0)

    def test_interval_clipped_across_windows(self):
        from repro.core.metrics import rolling_utilization

        system = CPU_GPU_FPGA()
        entries = [entry(kid=0, transfer=5.0, start=5.0, finish=15.0)]
        rows = rolling_utilization(entries, system, window_ms=10.0)
        assert len(rows) == 2
        # [0,10): busy 5 of 10 ms on 1 of 3 processors
        assert rows[0][2] == pytest.approx(0.5 / 3.0)
        # [10,15): the final window is clipped to the horizon — busy 5 of
        # 5 elapsed ms on 1 of 3 processors
        assert rows[1][2] == pytest.approx(1.0 / 3.0)

    def test_empty_schedule(self):
        from repro.core.metrics import rolling_utilization

        assert rolling_utilization([], CPU_GPU_FPGA(), 10.0) == []

    def test_bad_window_rejected(self):
        from repro.core.metrics import rolling_utilization

        with pytest.raises(ValueError):
            rolling_utilization([], CPU_GPU_FPGA(), 0.0)

    def test_explicit_horizon_never_exceeds_one(self):
        from repro.core.metrics import rolling_utilization

        system = CPU_GPU_FPGA()
        # kernel runs 60..120 ms, but the caller cuts off at 100 ms: the
        # final window's busy time must clip to the horizon too
        entries = [entry(kid=0, transfer=60.0, start=60.0, finish=120.0)]
        rows = rolling_utilization(entries, system, window_ms=60.0, horizon_ms=100.0)
        assert all(0.0 <= util <= 1.0 + 1e-9 for _, _, util in rows)
        assert rows[1][2] == pytest.approx(1.0 / 3.0)
