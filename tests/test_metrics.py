"""Unit tests for metrics computation (λ stats, processor usage)."""

import math

import pytest

from repro.core.metrics import (
    LambdaStats,
    ProcessorUsage,
    compute_metrics,
)
from repro.core.schedule import Schedule
from repro.core.system import CPU_GPU_FPGA
from tests.test_schedule import entry


class TestLambdaStats:
    def test_from_delays_matches_eq11_eq12(self):
        # Eq. (11): avg = total / N; eq. (12): population stddev.
        delays = [2.0, 4.0, 6.0]
        st = LambdaStats.from_delays(delays)
        assert st.total == 12.0
        assert st.count == 3
        assert st.average == pytest.approx(4.0)
        assert st.stddev == pytest.approx(math.sqrt(8.0 / 3.0))

    def test_zero_delays_not_counted(self):
        # N counts only occurrences where a delay actually happened.
        st = LambdaStats.from_delays([0.0, 0.0, 3.0])
        assert st.count == 1
        assert st.total == 3.0
        assert st.average == 3.0
        assert st.stddev == 0.0

    def test_empty(self):
        st = LambdaStats.from_delays([])
        assert st.total == 0.0 and st.count == 0
        assert st.average == 0.0 and st.stddev == 0.0

    def test_numerical_noise_ignored(self):
        st = LambdaStats.from_delays([1e-12, 5.0])
        assert st.count == 1


class TestProcessorUsage:
    def test_busy_and_utilization(self):
        u = ProcessorUsage("cpu0", compute_time=30.0, transfer_time=10.0, idle_time=60.0)
        assert u.busy_time == 40.0
        assert u.utilization(100.0) == pytest.approx(0.4)
        assert u.utilization(0.0) == 0.0


class TestComputeMetrics:
    def test_full_accounting(self):
        system = CPU_GPU_FPGA()
        s = Schedule(
            [
                # cpu0: transfer 2ms then exec 8ms
                entry(kid=0, proc="cpu0", ready=0.0, transfer=0.0, start=2.0, finish=10.0),
                # gpu0: exec from 5 to 20 after ready at 1 (lambda = 4)
                entry(kid=1, proc="gpu0", ready=1.0, assign=5.0, start=5.0, finish=20.0),
            ]
        )
        m = compute_metrics(s, system)
        assert m.makespan == 20.0
        assert m.usage["cpu0"].compute_time == pytest.approx(8.0)
        assert m.usage["cpu0"].transfer_time == pytest.approx(2.0)
        assert m.usage["cpu0"].idle_time == pytest.approx(10.0)
        assert m.usage["gpu0"].compute_time == pytest.approx(15.0)
        assert m.usage["fpga0"].idle_time == pytest.approx(20.0)
        # λ (arrival-anchored): kernel 0 starts at 2, kernel 1 at 5.
        assert m.lambda_stats.total == pytest.approx(7.0)
        assert m.lambda_stats.count == 2
        # queue wait (ready-anchored): 2 - 0 = 2 and 5 - 1 = 4.
        assert m.queue_wait_stats.total == pytest.approx(6.0)
        assert m.n_kernels == 2

    def test_totals(self):
        system = CPU_GPU_FPGA()
        s = Schedule([entry(kid=0, start=0.0, finish=10.0)])
        m = compute_metrics(s, system)
        assert m.total_compute_time == pytest.approx(10.0)
        assert m.total_transfer_time == 0.0
        # two processors fully idle + the busy one has zero idle
        assert m.total_idle_time == pytest.approx(20.0)
        assert m.mean_utilization() == pytest.approx(1.0 / 3.0)

    def test_empty_schedule(self):
        system = CPU_GPU_FPGA()
        m = compute_metrics(Schedule(), system)
        assert m.makespan == 0.0
        assert m.mean_utilization() == 0.0
