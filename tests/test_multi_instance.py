"""Tests for systems with multiple processors of one category.

The paper's simulator makes "the number of processors of any type …
customizable" (§3.2) even though the evaluation uses 1/1/1; these tests
pin the multi-instance semantics of every policy family.
"""

import pytest

from repro.core.simulator import Simulator
from repro.core.system import CPU_GPU_FPGA
from repro.policies.ag import AG
from repro.policies.apt import APT
from repro.policies.heft import HEFT
from repro.policies.met import MET
from repro.policies.spn import SPN
from tests.test_simulator import dfg_of


@pytest.fixture
def dual_gpu_sim(synth_lookup):
    return Simulator(
        CPU_GPU_FPGA(n_gpu=2), synth_lookup, transfers_enabled=False
    )


class TestMET:
    def test_uses_any_idle_instance_of_best_type(self, dual_gpu_sim):
        result = dual_gpu_sim.run(dfg_of("fast_gpu", "fast_gpu"), MET())
        assert {e.processor for e in result.schedule} == {"gpu0", "gpu1"}
        assert result.makespan == pytest.approx(10.0)

    def test_waits_only_when_all_instances_busy(self, dual_gpu_sim):
        result = dual_gpu_sim.run(dfg_of("fast_gpu", "fast_gpu", "fast_gpu"), MET())
        assert result.makespan == pytest.approx(20.0)
        third = result.schedule[2]
        assert third.lambda_delay == pytest.approx(10.0)


class TestAPT:
    def test_second_instance_preferred_over_alternative(self, dual_gpu_sim):
        # With a free gpu1, APT must use it rather than a threshold
        # alternative, even at huge alpha.
        result = dual_gpu_sim.run(dfg_of("fast_gpu", "fast_gpu"), APT(alpha=16.0))
        assert result.metrics.n_alternative_assignments == 0
        assert {e.processor for e in result.schedule} == {"gpu0", "gpu1"}

    def test_alternative_kicks_in_once_instances_exhausted(self, dual_gpu_sim):
        result = dual_gpu_sim.run(
            dfg_of("fast_gpu", "fast_gpu", "fast_gpu"), APT(alpha=5.0)
        )
        assert result.metrics.n_alternative_assignments == 1
        assert result.makespan == pytest.approx(50.0)  # FPGA alternative


class TestOthers:
    def test_spn_fills_all_instances(self, dual_gpu_sim):
        result = dual_gpu_sim.run(
            dfg_of("fast_gpu", "fast_gpu", "fast_gpu", "fast_gpu"), SPN()
        )
        # 4 kernels, 4 processors: all start immediately.
        assert result.metrics.lambda_stats.total == pytest.approx(0.0)

    def test_ag_spreads_queues_across_instances(self, dual_gpu_sim):
        dfg = dfg_of(*["uniform"] * 4)
        result = dual_gpu_sim.run(dfg, AG())
        assert all(e.exec_start == 0.0 for e in result.schedule)

    def test_heft_plans_over_instances(self, dual_gpu_sim, synth_lookup):
        dfg = dfg_of("fast_gpu", "fast_gpu", "fast_gpu", "fast_gpu")
        result = dual_gpu_sim.run(dfg, HEFT())
        result.schedule.validate(dfg)
        # two rounds on two GPUs beats any single-GPU serialization
        assert result.makespan == pytest.approx(20.0)

    def test_asymmetric_system_no_fpga(self, synth_lookup):
        sim = Simulator(CPU_GPU_FPGA(n_fpga=0), synth_lookup)
        result = sim.run(dfg_of("fast_fpga"), MET())
        # best remaining category for fast_fpga (50 cpu, 100 gpu) is CPU
        assert result.schedule[0].processor == "cpu0"
