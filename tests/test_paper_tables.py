"""Tests on the transcribed paper data (Tables 5–7, 14; graph sizes)."""

from repro.core.system import ProcessorType
from repro.data.paper_tables import (
    FIGURE5_KERNELS,
    HARDWARE_PLATFORMS,
    PAPER_GRAPH_SIZES,
    PAPER_KERNELS,
    figure5_lookup_table,
    paper_lookup_table,
)

CPU, GPU, FPGA = ProcessorType.CPU, ProcessorType.GPU, ProcessorType.FPGA


class TestTable14:
    def test_seven_kernels(self):
        table = paper_lookup_table()
        assert set(table.kernels) == set(PAPER_KERNELS)

    def test_point_count(self):
        # 3 LA kernels × 7 sizes + 4 OpenDwarfs kernels × 1 size, × 3 ptypes
        assert len(paper_lookup_table()) == (3 * 7 + 4) * 3

    def test_spot_values_match_publication(self):
        t = paper_lookup_table()
        assert t.time("matmul", 16_000_000, CPU) == 1967.286
        assert t.time("matmul", 16_000_000, GPU) == 0.061
        assert t.time("matmul", 16_000_000, FPGA) == 76293.945
        assert t.time("cholesky", 250_000, FPGA) == 0.093
        assert t.time("matinv", 698_896, GPU) == 22.352
        assert t.time("gem", 2_070_376, GPU) == 4001.0

    def test_table3_example_row(self):
        # Table 3's worked example: matrix inverse at 836×836 = 698 896.
        t = paper_lookup_table()
        assert t.time("matinv", 698_896, CPU) == 148.387
        assert t.time("matinv", 698_896, FPGA) == 110.597

    def test_best_processor_structure(self):
        # Dominant platforms per kernel (paper §4.1 discussion).
        t = paper_lookup_table()
        assert t.best_processor("matmul", 64_000_000, (CPU, GPU, FPGA))[0] is GPU
        assert t.best_processor("bfs", 2_034_736, (CPU, GPU, FPGA))[0] is FPGA
        assert t.best_processor("nw", 16_777_216, (CPU, GPU, FPGA))[0] is CPU
        assert t.best_processor("srad", 134_217_728, (CPU, GPU, FPGA))[0] is GPU
        assert t.best_processor("cholesky", 250_000, (CPU, GPU, FPGA))[0] is FPGA

    def test_heterogeneity_is_large(self):
        # The paper picks these kernels because their cross-platform
        # spreads are huge; matmul's exceeds 10^6.
        t = paper_lookup_table()
        assert t.heterogeneity("matmul", 64_000_000, (CPU, GPU, FPGA)) > 1e6
        assert t.heterogeneity("gem", 2_070_376, (CPU, GPU, FPGA)) > 100


class TestFigure5Data:
    def test_workload_composition(self):
        kinds = [s.kernel for s in FIGURE5_KERNELS]
        assert kinds == ["nw", "bfs", "bfs", "bfs", "cholesky"]

    def test_lookup_matches_table7(self):
        t = figure5_lookup_table()
        assert t.time("nw", 16_777_216, CPU) == 112.0
        assert t.time("bfs", 2_034_736, FPGA) == 106.0
        assert t.time("cholesky", 250_000, GPU) == 2.749

    def test_subset_of_full_table(self):
        full = paper_lookup_table()
        sub = figure5_lookup_table()
        for e in sub.entries():
            assert full.time(e.kernel, e.data_size, e.ptype) == e.time_ms


class TestSuiteMetadata:
    def test_ten_graph_sizes_from_tables_15_16(self):
        assert PAPER_GRAPH_SIZES == (46, 58, 50, 73, 69, 81, 125, 93, 132, 157)

    def test_hardware_provenance_recorded(self):
        assert len(HARDWARE_PLATFORMS) == 2
        assert any("Tesla K20" in hp.gpu for hp in HARDWARE_PLATFORMS)

    def test_kernel_dwarf_mapping_covers_table5(self):
        assert PAPER_KERNELS["nw"] == "dynamic_programming"
        assert PAPER_KERNELS["srad"] == "structured_grids"
