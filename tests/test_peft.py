"""Unit tests for PEFT: OCT values (hand-computed), ranks, planning.

Hand-computed OCT for the chain fast_cpu → fast_gpu (see test_heft for
the c̄ = 2/3 ms derivation); w(fast_gpu) = (100, 10, 50):

* OCT(exit, ·) = 0
* OCT(0, cpu)  = min(100, 10 + 2/3, 50 + 2/3) = 10 + 2/3
* OCT(0, gpu)  = min(100 + 2/3, 10, 50 + 2/3) = 10
* OCT(0, fpga) = min(100 + 2/3, 10 + 2/3, 50) = 10 + 2/3
* rank_oct(0)  = (10 + 2/3 + 10 + 10 + 2/3)/3 = 10 + 4/9
"""

import pytest

from repro.policies.met import MET
from repro.policies.peft import PEFT, optimistic_cost_table, rank_oct
from repro.core.cost import CostModel
from tests.conftest import make_synth_population
from tests.test_simulator import dfg_of

CBAR = 2.0 / 3.0


@pytest.fixture
def chain_dfg():
    return dfg_of("fast_cpu", "fast_gpu", deps=[(0, 1)])


class TestOCT:
    def test_exit_row_is_zero(self, chain_dfg, system, synth_lookup):
        oct_ = optimistic_cost_table(chain_dfg, system, synth_lookup)
        assert all(v == 0.0 for v in oct_[1].values())

    def test_hand_computed_entry_row(self, chain_dfg, system, synth_lookup):
        oct_ = optimistic_cost_table(chain_dfg, system, synth_lookup)
        assert oct_[0]["cpu0"] == pytest.approx(10 + CBAR)
        assert oct_[0]["gpu0"] == pytest.approx(10.0)
        assert oct_[0]["fpga0"] == pytest.approx(10 + CBAR)

    def test_rank_oct_is_row_average(self, chain_dfg, system, synth_lookup):
        oct_ = optimistic_cost_table(chain_dfg, system, synth_lookup)
        ranks = rank_oct(oct_)
        assert ranks[0] == pytest.approx((10 + CBAR + 10 + 10 + CBAR) / 3)
        assert ranks[1] == 0.0

    def test_oct_nonnegative_everywhere(self, system, synth_lookup, rng):
        from repro.graphs.generators import make_type2_dfg

        dfg = make_type2_dfg(25, rng=rng, population=make_synth_population())
        oct_ = optimistic_cost_table(dfg, system, synth_lookup)
        assert all(v >= 0.0 for row in oct_.values() for v in row.values())


class TestPlanning:
    def test_chain_placement_minimizes_oeft(self, chain_dfg, system, synth_lookup):
        plan = PEFT().plan(chain_dfg, CostModel(system, synth_lookup))
        # kernel 0: OEFT cpu = 10 + 10.67 ≈ 20.67 beats gpu (110), fpga (60.67)
        assert plan.processor_of[0] == "cpu0"
        assert plan.processor_of[1] == "gpu0"

    def test_plan_is_complete_and_valid(self, system, synth_lookup, rng):
        from repro.graphs.generators import make_type1_dfg

        dfg = make_type1_dfg(25, rng=rng, population=make_synth_population())
        plan = PEFT().plan(dfg, CostModel(system, synth_lookup))
        plan.validate(dfg, system)

    def test_simulated_schedule_is_feasible(self, synth_sim, rng):
        from repro.graphs.generators import make_type2_dfg

        dfg = make_type2_dfg(30, rng=rng, population=make_synth_population())
        result = synth_sim.run(dfg, PEFT())
        result.schedule.validate(dfg)

    def test_matches_met_on_perfectly_separable_load(self, synth_sim):
        dfg = dfg_of("fast_cpu", "fast_gpu", "fast_fpga")
        peft = synth_sim.run(dfg, PEFT()).makespan
        met = synth_sim.run(dfg, MET()).makespan
        assert peft == pytest.approx(met) == pytest.approx(10.0)

    def test_static_policy_flag(self):
        assert not PEFT().is_dynamic
