"""Unit tests for the policy interface layer (context helpers, StaticPlan)."""

import pytest

from repro.policies.base import (
    Assignment,
    DynamicPolicy,
    SchedulingContext,
    StaticPlan,
)
from repro.core.system import ProcessorType
from tests.test_simulator import dfg_of


class ContextCapture(DynamicPolicy):
    """Grabs the first context it sees, then behaves like OLB."""

    name = "capture"

    def __init__(self):
        self.first_ctx: SchedulingContext | None = None

    def reset(self):
        self.first_ctx = None

    def select(self, ctx):
        if self.first_ctx is None:
            self.first_ctx = ctx
        out = []
        idle = [v.name for v in ctx.idle_processors()]
        for kid in ctx.ready:
            if not idle:
                break
            out.append(Assignment(kernel_id=kid, processor=idle.pop(0)))
        return out


class TestSchedulingContext:
    @pytest.fixture
    def captured(self, synth_sim):
        dfg = dfg_of("fast_cpu", "fast_gpu", "uniform", deps=[(0, 2)])
        policy = ContextCapture()
        synth_sim.run(dfg, policy)
        return policy.first_ctx

    def test_initial_ready_set_is_entry_kernels(self, captured):
        assert captured.ready == (0, 1)

    def test_all_processors_initially_idle(self, captured):
        assert len(captured.idle_processors()) == 3

    def test_exec_time_helpers_agree(self, captured):
        t_by_type = captured.exec_time(0, ProcessorType.CPU)
        t_by_name = captured.exec_time_on(0, "cpu0")
        assert t_by_type == t_by_name == 10.0

    def test_best_processor_type(self, captured):
        ptype, x = captured.best_processor_type(1)
        assert ptype is ProcessorType.GPU and x == 10.0

    def test_data_bytes_uses_element_size(self, captured):
        assert captured.data_bytes(0) == 1_000_000 * 4

    def test_transfer_time_zero_without_predecessors(self, captured):
        assert captured.transfer_time(0, "fpga0") == 0.0


class TestStaticPlan:
    def test_validate_accepts_complete_plan(self, system):
        dfg = dfg_of("fast_cpu", "fast_gpu")
        plan = StaticPlan(
            processor_of={0: "cpu0", 1: "gpu0"}, priority={0: 0, 1: 1}
        )
        plan.validate(dfg, system)

    def test_validate_rejects_missing_kernel(self, system):
        dfg = dfg_of("fast_cpu", "fast_gpu")
        plan = StaticPlan(processor_of={0: "cpu0"}, priority={0: 0})
        with pytest.raises(ValueError, match="every kernel"):
            plan.validate(dfg, system)

    def test_validate_rejects_unknown_processor(self, system):
        dfg = dfg_of("fast_cpu")
        plan = StaticPlan(processor_of={0: "tpu9"}, priority={0: 0})
        with pytest.raises(ValueError, match="unknown processor"):
            plan.validate(dfg, system)

    def test_validate_rejects_duplicate_priorities(self, system):
        dfg = dfg_of("fast_cpu", "fast_gpu")
        plan = StaticPlan(
            processor_of={0: "cpu0", 1: "gpu0"}, priority={0: 0, 1: 0}
        )
        with pytest.raises(ValueError, match="unique"):
            plan.validate(dfg, system)

    def test_validate_rejects_missing_priority(self, system):
        dfg = dfg_of("fast_cpu", "fast_gpu")
        plan = StaticPlan(
            processor_of={0: "cpu0", 1: "gpu0"}, priority={0: 0}
        )
        with pytest.raises(ValueError, match="rank"):
            plan.validate(dfg, system)


class TestProcessorView:
    def test_views_reflect_busy_state(self, synth_sim):
        seen = {}

        class Snoop(DynamicPolicy):
            name = "snoop"

            def select(self, ctx):
                out = []
                idle = [v.name for v in ctx.idle_processors()]
                if ctx.time > 0 and not seen:
                    seen.update(ctx.views)
                for kid in ctx.ready:
                    if not idle:
                        break
                    out.append(Assignment(kernel_id=kid, processor=idle.pop(0)))
                return out

        dfg = dfg_of("fast_cpu", "fast_cpu", "fast_cpu", "fast_cpu")
        synth_sim.run(dfg, Snoop())
        # At the first post-zero decision point, at least one processor is
        # still busy (the 100ms fast_cpu-on-gpu run) and reports free_at.
        busy = [v for v in seen.values() if v.busy]
        assert busy and all(v.free_at > 0 for v in busy)
