"""Property-based tests (hypothesis) on core invariants.

Strategy summary: random workloads are layered DAGs over the synthetic
kernel population; random policies span the dynamic + static registry.
Every generated (workload, policy) pair must produce a schedule that is
feasible, complete, deterministic and bounded below by the graph-theoretic
makespan bounds.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.events import Event, EventKind, EventQueue
from repro.core.lookup import LookupEntry, LookupTable
from repro.core.metrics import LambdaStats
from repro.core.simulator import Simulator
from repro.core.system import CPU_GPU_FPGA, ProcessorType
from repro.graphs.analysis import lower_bound_makespan, sequential_time
from repro.graphs.dfg import DFG
from repro.graphs.generators import KernelPopulation, make_layered_dfg
from repro.graphs.serialization import dfg_from_dict, dfg_to_dict
from repro.kernels.nw import NeedlemanWunschKernel, nw_score_matrix_reference
from repro.policies.apt import APT
from repro.policies.met import MET
from repro.policies.registry import get_policy
from tests.conftest import SYNTH_SIZE, make_synthetic_lookup, make_synth_population

SYSTEM = CPU_GPU_FPGA(transfer_rate_gbps=4.0)
LOOKUP = make_synthetic_lookup()
POPULATION = make_synth_population()
#: population without ties between platforms (for MET-equivalence laws).
TIE_FREE_POPULATION = KernelPopulation(
    tuple((k, SYNTH_SIZE) for k in ("fast_cpu", "fast_gpu", "fast_fpga"))
)

POLICY_NAMES = ("apt", "apt_rt", "met", "spn", "ss", "ag", "olb", "heft", "peft")


@st.composite
def random_dfg(draw, population=POPULATION) -> DFG:
    n = draw(st.integers(min_value=1, max_value=24))
    n_layers = draw(st.integers(min_value=1, max_value=min(n, 5)))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    prob = draw(st.floats(min_value=0.0, max_value=1.0))
    return make_layered_dfg(
        n, n_layers, rng=np.random.default_rng(seed),
        population=population, edge_probability=prob,
    )


def _policy(name: str):
    if name in ("apt", "apt_rt"):
        return get_policy(name, alpha=4.0)
    return get_policy(name)


class TestScheduleFeasibility:
    @settings(max_examples=40, deadline=None)
    @given(dfg=random_dfg(), policy_name=st.sampled_from(POLICY_NAMES))
    def test_every_policy_yields_feasible_complete_schedule(self, dfg, policy_name):
        sim = Simulator(SYSTEM, LOOKUP)
        result = sim.run(dfg, _policy(policy_name))
        result.schedule.validate(dfg)  # dependencies + no overlap
        assert len(result.schedule) == len(dfg)

    @settings(max_examples=25, deadline=None)
    @given(dfg=random_dfg(), policy_name=st.sampled_from(POLICY_NAMES))
    def test_makespan_bounded_below(self, dfg, policy_name):
        sim = Simulator(SYSTEM, LOOKUP)
        result = sim.run(dfg, _policy(policy_name))
        bound = lower_bound_makespan(dfg, LOOKUP, SYSTEM)
        assert result.makespan >= bound - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(dfg=random_dfg())
    def test_met_makespan_bounded_above_by_serialized_best(self, dfg):
        # MET executes every kernel on its best processor; even fully
        # serialized that is Σ best times (no transfers between waits
        # exceed this since best-processor execution has no transfer
        # longer than the serialized schedule's slack).
        sim = Simulator(SYSTEM, LOOKUP, transfers_enabled=False)
        result = sim.run(dfg, MET())
        assert result.makespan <= sequential_time(dfg, LOOKUP, SYSTEM) + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(dfg=random_dfg(), policy_name=st.sampled_from(POLICY_NAMES))
    def test_determinism(self, dfg, policy_name):
        sim = Simulator(SYSTEM, LOOKUP)
        a = sim.run(dfg, _policy(policy_name))
        b = sim.run(dfg, _policy(policy_name))
        assert a.makespan == b.makespan
        assert [(e.kernel_id, e.processor) for e in a.schedule] == [
            (e.kernel_id, e.processor) for e in b.schedule
        ]


class TestAPTLaws:
    @settings(max_examples=30, deadline=None)
    @given(dfg=random_dfg(population=TIE_FREE_POPULATION))
    def test_alpha_one_equals_met_without_ties(self, dfg):
        # With strictly heterogeneous kernels no alternative can satisfy
        # exec ≤ 1·x, so APT(1) degenerates to MET exactly.
        sim = Simulator(SYSTEM, LOOKUP)
        apt = sim.run(dfg, APT(alpha=1.0))
        met = sim.run(dfg, MET())
        assert apt.makespan == pytest.approx(met.makespan)
        assert apt.metrics.n_alternative_assignments == 0

    @settings(max_examples=30, deadline=None)
    @given(dfg=random_dfg(), alpha=st.floats(min_value=1.0, max_value=32.0))
    def test_alternative_cost_within_threshold(self, dfg, alpha):
        # Every alternative assignment's exec+transfer must satisfy the
        # threshold inequality against the kernel's best-case time.
        sim = Simulator(SYSTEM, LOOKUP)
        result = sim.run(dfg, APT(alpha=alpha))
        for e in result.schedule:
            if e.used_alternative:
                _, x = LOOKUP.best_processor(
                    e.kernel, e.data_size, SYSTEM.processor_types()
                )
                cost = e.exec_time + e.transfer_time
                assert cost <= alpha * x + 1e-9


class TestLookupProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        sizes=st.lists(
            st.integers(min_value=10, max_value=10**7), min_size=2, max_size=6,
            unique=True,
        ),
        times=st.lists(
            st.floats(min_value=0.01, max_value=10**5), min_size=6, max_size=6
        ),
        query=st.integers(min_value=10, max_value=10**7),
    )
    def test_interpolation_between_series_extremes(self, sizes, times, query):
        sizes = sorted(sizes)
        entries = [
            LookupEntry("k", s, ProcessorType.CPU, times[i])
            for i, s in enumerate(sizes)
        ]
        table = LookupTable(entries)
        value = table.time("k", query, ProcessorType.CPU)
        assert value > 0
        if sizes[0] <= query <= sizes[-1]:
            lo = min(times[: len(sizes)])
            hi = max(times[: len(sizes)])
            assert lo * (1 - 1e-9) <= value <= hi * (1 + 1e-9)

    @settings(max_examples=30, deadline=None)
    @given(query=st.sampled_from([250_000, 1_000_000, 16_000_000]))
    def test_exact_points_returned_verbatim(self, query):
        from repro.data.paper_tables import paper_lookup_table, _TABLE14

        table = paper_lookup_table()
        cpu, gpu, fpga = _TABLE14["matinv"][query]
        assert table.time("matinv", query, ProcessorType.CPU) == cpu
        assert table.time("matinv", query, ProcessorType.GPU) == gpu


class TestEventQueueProperties:
    @settings(max_examples=50, deadline=None)
    @given(times=st.lists(st.floats(min_value=0, max_value=1e6), max_size=60))
    def test_pop_order_is_sorted(self, times):
        q = EventQueue()
        for t in times:
            q.push(Event(t, EventKind.KERNEL_COMPLETE))
        popped = [q.pop().time for _ in range(len(times))]
        assert popped == sorted(times)


class TestMetricsProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        delays=st.lists(st.floats(min_value=0, max_value=1e5), max_size=40)
    )
    def test_lambda_stats_internal_consistency(self, delays):
        st_ = LambdaStats.from_delays(delays)
        assert st_.total == pytest.approx(st_.average * st_.count)
        assert st_.stddev >= 0
        assert st_.count <= len(delays)


class TestSerializationProperties:
    @settings(max_examples=30, deadline=None)
    @given(dfg=random_dfg())
    def test_round_trip_identity(self, dfg):
        back = dfg_from_dict(dfg_to_dict(dfg))
        assert back.kernel_ids() == dfg.kernel_ids()
        assert back.edges() == dfg.edges()
        assert [back.spec(i) for i in back] == [dfg.spec(i) for i in dfg]


class TestKernelProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=12),
        m=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_nw_vectorized_equals_reference(self, n, m, seed):
        rng = np.random.default_rng(seed)
        k = NeedlemanWunschKernel()
        seq1 = rng.integers(0, 4, size=n).astype(np.int8)
        seq2 = rng.integers(0, 4, size=m).astype(np.int8)
        out = k.run(seq1=seq1, seq2=seq2)
        ref = nw_score_matrix_reference(seq1, seq2, k.match, k.mismatch, k.gap)
        assert np.array_equal(out, ref)
