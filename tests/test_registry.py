"""Unit tests for the policy registry."""

import pytest

from repro.policies.base import DynamicPolicy
from repro.policies.registry import (
    PAPER_POLICIES,
    available_policies,
    get_policy,
    register_policy,
)


class TestRegistry:
    def test_all_paper_policies_available(self):
        available = available_policies()
        for name in PAPER_POLICIES:
            assert name in available

    def test_get_policy_instantiates(self):
        assert get_policy("met").name == "met"
        assert get_policy("heft").name == "heft"

    def test_get_policy_forwards_kwargs(self):
        assert get_policy("apt", alpha=7.5).alpha == 7.5

    def test_case_insensitive(self):
        assert get_policy("MET").name == "met"

    def test_unknown_policy_lists_available(self):
        with pytest.raises(KeyError, match="available"):
            get_policy("nonexistent")

    def test_register_custom_policy(self):
        class MyPolicy(DynamicPolicy):
            name = "custom_test_policy"

            def select(self, ctx):
                return []

        register_policy("custom_test_policy", MyPolicy)
        assert get_policy("custom_test_policy").name == "custom_test_policy"
        with pytest.raises(ValueError, match="already"):
            register_policy("custom_test_policy", MyPolicy)

    def test_paper_policy_count_is_seven(self):
        assert len(PAPER_POLICIES) == 7
