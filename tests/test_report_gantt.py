"""Unit tests for text rendering (tables, figures, Gantt charts)."""

import pytest

from repro.analysis.gantt import ascii_gantt
from repro.core.schedule import Schedule
from repro.experiments.report import (
    FigureResult,
    TableResult,
    render_figure,
    render_table,
)
from repro.policies.met import MET
from tests.test_simulator import dfg_of


class TestTableResult:
    @pytest.fixture
    def table(self):
        return TableResult(
            title="T",
            headers=("Graph", "APT", "MET"),
            rows=((1, 10.5, 12.0), (2, 20.0, 21.0)),
            notes="note",
        )

    def test_column_extraction(self, table):
        assert table.column("APT") == [10.5, 20.0]
        with pytest.raises(ValueError):
            table.column("GHOST")

    def test_render_contains_everything(self, table):
        text = render_table(table)
        assert "T" in text and "APT" in text and "note" in text
        assert "10.5" in text.replace(",", "")

    def test_render_alignment_consistent(self, table):
        lines = render_table(table).splitlines()
        data_lines = [ln for ln in lines if "|" in ln]
        assert len({len(ln) for ln in data_lines}) == 1


class TestFigureResult:
    def test_series_length_validated(self):
        with pytest.raises(ValueError):
            FigureResult(
                title="F",
                x_label="alpha",
                x_values=(1, 2),
                series={"a": (1.0,)},
            )

    def test_render_mentions_series_and_values(self):
        fig = FigureResult(
            title="F",
            x_label="alpha",
            x_values=(1.5, 4.0),
            series={"4 GBps": (100.0, 50.0)},
        )
        text = render_figure(fig)
        assert "F" in text and "4 GBps" in text
        assert "alpha=1.5" in text

    def test_render_bar_lengths_scale(self):
        fig = FigureResult(
            title="F",
            x_label="x",
            x_values=(1, 2),
            series={"s": (100.0, 50.0)},
        )
        lines = [ln for ln in render_figure(fig).splitlines() if "#" in ln]
        assert lines[0].count("#") > lines[1].count("#")


class TestGantt:
    def test_renders_all_processors(self, synth_sim, system):
        result = synth_sim.run(dfg_of("fast_cpu", "fast_gpu", "fast_fpga"), MET())
        text = ascii_gantt(result.schedule, system)
        for p in ("cpu0", "gpu0", "fpga0"):
            assert p in text

    def test_shows_transfer_shading(self, synth_sim, system):
        result = synth_sim.run(dfg_of("fast_cpu", "fast_gpu", deps=[(0, 1)]), MET())
        assert "░" in ascii_gantt(result.schedule, system, width=400)

    def test_empty_schedule(self, system):
        assert "empty" in ascii_gantt(Schedule(), system)

    def test_width_validation(self, system):
        with pytest.raises(ValueError):
            ascii_gantt(Schedule(), system, width=5)

    def test_idle_processor_rendered_as_dots(self, synth_sim, system):
        result = synth_sim.run(dfg_of("fast_cpu"), MET())
        lines = ascii_gantt(result.schedule, system).splitlines()
        fpga_line = next(ln for ln in lines if ln.startswith("fpga0"))
        assert set(fpga_line.split("|")[1]) == {"·"}
