"""Integration tests asserting the paper's *qualitative* results.

These are the acceptance criteria of docs/architecture.md ("Reproduction notes"): the regenerated random
graphs can't match the paper's milliseconds, but the relationships its
conclusions rest on must hold.  One shared runner memoizes the underlying
simulations across tests.
"""

import pytest

from repro.analysis.stats import improvement_vs_second_best
from repro.experiments.runner import ExperimentRunner
from repro.experiments.workloads import paper_suite

RATE = 4.0


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


@pytest.fixture(scope="module", params=[1, 2], ids=["type1", "type2"])
def dfg_type(request):
    return request.param


@pytest.fixture(scope="module")
def suite(dfg_type):
    return paper_suite(dfg_type)


class TestAPTvsMET:
    def test_alpha_small_mimics_met(self, runner, suite):
        """Thesis §4.2: at α=1.5 APT and MET makespans are (near) equal.

        Not byte-identical — the paper's own Table 15 shows a couple of
        NW kernels taking an alternative even at α=1.5 (GPU time 146 ms ≤
        1.5 × 112 ms), so we assert every graph within 2 % and most exactly
        tied."""
        apt = runner.run_suite(suite, "apt", RATE, alpha=1.5)
        met = runner.run_suite(suite, "met", RATE)
        assert all(
            abs(a.makespan - m.makespan) / m.makespan < 0.02
            for a, m in zip(apt, met)
        )
        ties = sum(
            1 for a, m in zip(apt, met) if a.makespan == pytest.approx(m.makespan)
        )
        assert ties >= 4

    def test_alpha_4_beats_met_on_most_graphs(self, runner, suite):
        """Thesis Tables 8/10: APT(α=4) wins ≥ 9 of 10 graphs."""
        apt = runner.run_suite(suite, "apt", RATE, alpha=4.0)
        met = runner.run_suite(suite, "met", RATE)
        wins = sum(1 for a, m in zip(apt, met) if a.makespan < m.makespan - 1e-9)
        assert wins >= 9

    def test_alpha_4_mean_improvement_is_double_digit_ballpark(self, runner, suite):
        """Headline: ~16-18% mean improvement vs the 2nd-best dynamic
        policy; we accept anything solidly positive (>5%)."""
        values = {
            name: [r.makespan for r in runner.run_suite(suite, name, RATE)]
            for name in ("met", "spn", "ss", "ag")
        }
        values["apt"] = [
            r.makespan for r in runner.run_suite(suite, "apt", RATE, alpha=4.0)
        ]
        impr, second = improvement_vs_second_best(values, "apt")
        assert impr > 5.0
        assert second == "met"  # MET is the runner-up, as in the paper

    def test_lambda_improvement_exceeds_exec_improvement(self, runner, suite):
        """Thesis §4.4: the λ gain over MET is larger than the makespan
        gain — "the percentage of improvement is higher for λ than for the
        overall execution time".  (MET is the paper's effective runner-up
        for both metrics; see docs/architecture.md for the one λ-ordering
        deviation our accounting produces on Type-1.)"""
        met = runner.run_suite(suite, "met", RATE)
        apt = runner.run_suite(suite, "apt", RATE, alpha=4.0)
        def mean(xs):
            return sum(xs) / len(xs)

        impr_exec = 1 - mean([r.makespan for r in apt]) / mean(
            [r.makespan for r in met]
        )
        impr_lam = 1 - mean([r.total_lambda for r in apt]) / mean(
            [r.total_lambda for r in met]
        )
        assert impr_lam > impr_exec > 0


class TestAlphaValley:
    def test_makespan_valley_bottoms_at_alpha_4(self, runner, suite):
        """Figures 7/9: mean makespan decreases to α=4 then rises."""
        means = {}
        for alpha in (1.5, 4.0, 16.0):
            recs = runner.run_suite(suite, "apt", RATE, alpha=alpha)
            means[alpha] = sum(r.makespan for r in recs) / len(recs)
        assert means[4.0] < means[1.5]
        assert means[4.0] < means[16.0]

    def test_lambda_drops_from_alpha_small_to_4(self, runner, suite):
        """Figures 11/12, left side of the valley: flexibility at α=4
        cuts λ well below the MET-like α=1.5 level."""
        means = {}
        for alpha in (1.5, 2.0, 4.0):
            recs = runner.run_suite(suite, "apt", RATE, alpha=alpha)
            means[alpha] = sum(r.total_lambda for r in recs) / len(recs)
        assert means[4.0] < means[2.0]
        assert means[4.0] < means[1.5]

    def test_lambda_valley_right_side_on_type2(self, runner, dfg_type, suite):
        """Figure 12: on dependency-carrying Type-2 graphs, λ rises again
        past the α=4 break point."""
        if dfg_type != 2:
            pytest.skip("right side of the λ valley is a Type-2 phenomenon here")
        means = {}
        for alpha in (4.0, 16.0):
            recs = runner.run_suite(suite, "apt", RATE, alpha=alpha)
            means[alpha] = sum(r.total_lambda for r in recs) / len(recs)
        assert means[4.0] < means[16.0]

    def test_more_alternatives_at_higher_alpha(self, runner, suite):
        """Tables 15/16: α=1.5 triggers almost no alternative assignments,
        α=4 triggers many."""
        low = runner.run_suite(suite, "apt", RATE, alpha=1.5)
        high = runner.run_suite(suite, "apt", RATE, alpha=4.0)
        assert sum(r.n_alternative for r in low) < sum(r.n_alternative for r in high)
        assert sum(r.n_alternative for r in high) >= 10


class TestPolicyOrdering:
    def test_met_apt_dominate_naive_dynamic_policies(self, runner, suite):
        """Tables 8-10: SPN, SS and AG trail MET/APT by a wide margin."""
        def mean(recs):
            return sum(r.makespan for r in recs) / len(recs)

        met = mean(runner.run_suite(suite, "met", RATE))
        for name in ("spn", "ss", "ag"):
            assert mean(runner.run_suite(suite, name, RATE)) > 1.5 * met

    def test_static_policies_land_near_met(self, runner, suite):
        """HEFT/PEFT sit in MET's neighbourhood (paper: within a few %;
        our idealized planner may fall on either side — see docs/architecture.md)."""
        def mean(recs):
            return sum(r.makespan for r in recs) / len(recs)

        met = mean(runner.run_suite(suite, "met", RATE))
        for name in ("heft", "peft"):
            value = mean(runner.run_suite(suite, name, RATE))
            assert 0.5 * met < value < 1.5 * met

    def test_transfer_rate_has_second_order_effect(self, runner, suite):
        """Figures 7/9: the 4 vs 8 GB/s curves nearly coincide."""
        m4 = [r.makespan for r in runner.run_suite(suite, "apt", 4.0, alpha=4.0)]
        m8 = [r.makespan for r in runner.run_suite(suite, "apt", 8.0, alpha=4.0)]
        mean4, mean8 = sum(m4) / len(m4), sum(m8) / len(m8)
        assert abs(mean4 - mean8) / mean4 < 0.1
