"""Scale scenarios: many-processor systems and 10k-kernel streams."""

from __future__ import annotations

import pytest

from repro.core.simulator import Simulator
from repro.core.system import ProcessorType
from repro.data.paper_tables import paper_lookup_table
from repro.experiments.workloads import (
    scale_system,
    streaming_scale_stream,
    streaming_scale_workload,
)
from repro.policies.apt import APT


class TestScaleSystem:
    def test_default_is_twelve_processors(self):
        system = scale_system()
        assert len(system) == 12
        assert len(system.of_type(ProcessorType.CPU)) == 4
        assert len(system.of_type(ProcessorType.GPU)) == 4
        assert len(system.of_type(ProcessorType.FPGA)) == 4

    def test_counts_and_rate_are_knobs(self):
        system = scale_system(n_cpu=1, n_gpu=6, n_fpga=2, transfer_rate_gbps=4.0)
        assert len(system) == 9
        assert system.default_rate_gbps == 4.0


class TestStreamingScaleWorkload:
    def test_total_kernel_count_reaches_target(self):
        dfg, arrivals = streaming_scale_workload(n_kernels=500, seed=1)
        assert len(dfg) >= 500
        assert len(dfg) < 500 + 20  # overshoot bounded by one application
        assert set(arrivals) == set(dfg.kernel_ids())

    def test_deterministic_for_a_seed(self):
        a_dfg, a_arr = streaming_scale_workload(n_kernels=300, seed=9)
        b_dfg, b_arr = streaming_scale_workload(n_kernels=300, seed=9)
        assert a_dfg.edges() == b_dfg.edges()
        assert a_arr == b_arr
        assert [a_dfg.spec(k) for k in a_dfg.kernel_ids()] == [
            b_dfg.spec(k) for k in b_dfg.kernel_ids()
        ]

    def test_seed_changes_the_stream(self):
        a_dfg, _ = streaming_scale_workload(n_kernels=300, seed=1)
        b_dfg, _ = streaming_scale_workload(n_kernels=300, seed=2)
        assert [a_dfg.spec(k) for k in a_dfg.kernel_ids()] != [
            b_dfg.spec(k) for k in b_dfg.kernel_ids()
        ]

    def test_mixes_application_shapes(self):
        stream = streaming_scale_stream(n_kernels=300, seed=5)
        names = {a.dfg.name.rsplit("_", 1)[-1] for a in stream}
        assert {"t1", "fj", "pipe"} <= names

    def test_rejects_tiny_target(self):
        with pytest.raises(ValueError):
            streaming_scale_stream(n_kernels=4)

    def test_simulates_end_to_end_on_scale_system(self):
        dfg, arrivals = streaming_scale_workload(
            n_kernels=200, seed=2, mean_interarrival_ms=1000.0
        )
        sim = Simulator(scale_system(), paper_lookup_table())
        result = sim.run(dfg, APT(alpha=4.0), arrivals=arrivals)
        assert len(result.schedule) == len(dfg)
        result.schedule.validate(dfg)
