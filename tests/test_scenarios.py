"""Tests for the declarative scenario registry (`repro.experiments.scenarios`)."""

import json

import pytest

from repro.core.simulator import Simulator
from repro.core.system import CPU_GPU_FPGA
from repro.data.paper_tables import paper_lookup_table
from repro.experiments.scenarios import (
    ScenarioSpec,
    WorkloadSpec,
    available_scenarios,
    get_scenario,
    register_scenario,
    run_scenario,
)
from repro.experiments.sweep import PolicySpec, SweepEngine, system_to_dict
from repro.experiments.workloads import build_workload, paper_suite
from repro.policies.registry import get_policy

EXPECTED_CATALOG = {
    "paper_type1",
    "paper_type2",
    "dual_socket_tree",
    "nvlink_mesh",
    "edge_cluster_bus",
    "fat_tree_streaming",
}


class TestRegistry:
    def test_catalog_ships_the_documented_scenarios(self):
        assert EXPECTED_CATALOG <= set(available_scenarios())

    def test_get_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="available"):
            get_scenario("bogus")

    def test_duplicate_registration_rejected(self):
        spec = get_scenario("edge_cluster_bus")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(lambda: spec)

    def test_every_spec_builds_its_system(self):
        for name in available_scenarios():
            system = get_scenario(name).build_system()
            assert len(system) >= 2


class TestSpecSerialization:
    def test_round_trip_every_catalog_entry(self):
        for name in available_scenarios():
            spec = get_scenario(name)
            clone = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
            assert clone == spec

    def test_workload_spec_params_are_order_insensitive(self):
        a = WorkloadSpec.of("paper_suite", dfg_type=1, seed=3)
        b = WorkloadSpec.of("paper_suite", seed=3, dfg_type=1)
        assert a == b

    def test_unknown_workload_kind_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            build_workload("bogus")

    def test_unknown_workload_param_fails_loudly(self):
        with pytest.raises(TypeError):
            build_workload("pipeline", bogus_param=1)


class TestExecution:
    def test_paper_star_scenario_reproduces_flat_numbers_bit_for_bit(self):
        # The star-topology scenario platform must price and schedule
        # exactly like the paper's flat link table.
        spec = get_scenario("paper_type1")
        lookup = paper_lookup_table()
        star = spec.build_system()
        flat = CPU_GPU_FPGA(transfer_rate_gbps=4.0)
        dfg = paper_suite(1)[0]
        for policy_name in ("apt", "met", "heft"):
            kwargs = {"alpha": 1.5} if policy_name == "apt" else {}
            star_run = Simulator(star, lookup).run(dfg, get_policy(policy_name, **kwargs))
            flat_run = Simulator(flat, lookup).run(dfg, get_policy(policy_name, **kwargs))
            assert list(star_run.schedule) == list(flat_run.schedule)
            assert star_run.metrics == flat_run.metrics

    def test_run_scenario_returns_policy_major_results(self):
        outcome = run_scenario("edge_cluster_bus", engine=SweepEngine())
        by_policy = outcome.by_policy()
        assert set(by_policy) == {"apt", "olb", "ag"}
        assert all(len(v) == 1 for v in by_policy.values())
        table = outcome.table()
        assert table.headers[0] == "Policy"
        assert len(table.rows) == 3

    def test_rerun_hits_the_cache(self, tmp_path):
        engine = SweepEngine(cache_dir=tmp_path)
        run_scenario("edge_cluster_bus", engine=engine)
        simulated_first = engine.stats.simulated
        assert simulated_first > 0
        fresh = SweepEngine(cache_dir=tmp_path)
        outcome = run_scenario("edge_cluster_bus", engine=fresh)
        assert fresh.stats.simulated == 0
        assert fresh.stats.disk_hits == len(outcome.results)

    def test_contention_flag_changes_the_cache_key(self):
        # Same graph shape, contention toggled: jobs must never share a
        # cache entry (their simulated results differ).
        spec = get_scenario("edge_cluster_bus")
        system = spec.build_system()
        data = system_to_dict(system)
        flipped = json.loads(json.dumps(data))
        flipped["topology"]["contention"] = False
        from repro.experiments.sweep import system_from_dict

        uncontended = system_from_dict(flipped)
        from repro.experiments.sweep import make_job

        lookup = paper_lookup_table()
        unit = spec.workload.build()[0]
        job_on = make_job(
            unit.dfg, PolicySpec.of("apt", alpha=2.0), system, lookup,
            arrivals=unit.arrivals,
        )
        job_off = make_job(
            unit.dfg, PolicySpec.of("apt", alpha=2.0), uncontended, lookup,
            arrivals=unit.arrivals,
        )
        assert job_on.content_hash() != job_off.content_hash()

    def test_scenario_jobs_carry_scenario_tag(self):
        jobs = get_scenario("edge_cluster_bus").jobs()
        assert all(job.tag["scenario"] == "edge_cluster_bus" for job in jobs)

    def test_empty_policy_grid_rejected(self):
        with pytest.raises(ValueError, match="empty policy grid"):
            ScenarioSpec(
                name="x",
                description="",
                system=system_to_dict(CPU_GPU_FPGA()),
                workload=WorkloadSpec.of("pipeline", n_kernels=8),
                policies=(),
            )


class TestOpenSystemScenarios:
    def test_registered(self):
        names = set(available_scenarios())
        assert {
            "open_system_poisson",
            "open_system_burst",
            "open_system_diurnal",
        } <= names

    def test_specs_round_trip(self):
        for name in ("open_system_poisson", "open_system_burst", "open_system_diurnal"):
            spec = get_scenario(name)
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_jobs_carry_spans_and_source(self):
        jobs = get_scenario("open_system_poisson").jobs()
        assert all(job.app_spans for job in jobs)
        assert all(job.source["kind"] == "open_system" for job in jobs)
        # one stream per policy in the default grid
        assert len(jobs) == len(get_scenario("open_system_poisson").policies)

    def test_run_produces_service_columns(self):
        spec = get_scenario("open_system_poisson")
        # shrink the stream so the test stays fast, keeping the spec's
        # profile and platform
        small = ScenarioSpec(
            name="open_small",
            description=spec.description,
            system=spec.system,
            workload=WorkloadSpec.of(
                "open_system",
                n_applications=4,
                seed=1,
                profile="poisson",
                mean_interarrival_ms=8000.0,
            ),
            policies=spec.policies[:2],
        )
        outcome = run_scenario(small, engine=SweepEngine())
        table = outcome.table()
        assert "Resp (ms)" in table.headers
        assert "Apps/s" in table.headers
        assert all(row[-1] > 0 for row in table.rows)

    def test_burst_and_poisson_twins_differ(self):
        # equal mean load, different arrival process → different keys and
        # different simulated outcomes
        p_jobs = get_scenario("open_system_poisson").jobs()
        b_jobs = get_scenario("open_system_burst").jobs()
        assert p_jobs[0].content_hash() != b_jobs[0].content_hash()
