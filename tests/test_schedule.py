"""Unit tests for schedule records and feasibility validation."""

import pytest

from repro.core.schedule import Schedule, ScheduleEntry
from repro.graphs.dfg import DFG, KernelSpec


def entry(
    kid=0,
    proc="cpu0",
    ready=0.0,
    assign=None,
    transfer=None,
    start=None,
    finish=None,
    kernel="k",
    alt=False,
) -> ScheduleEntry:
    assign = ready if assign is None else assign
    transfer = assign if transfer is None else transfer
    start = transfer if start is None else start
    finish = start + 10.0 if finish is None else finish
    return ScheduleEntry(
        kernel_id=kid,
        kernel=kernel,
        data_size=100,
        processor=proc,
        ptype="cpu",
        ready_time=ready,
        assign_time=assign,
        transfer_start=transfer,
        exec_start=start,
        finish_time=finish,
        used_alternative=alt,
    )


class TestScheduleEntry:
    def test_derived_times(self):
        e = entry(ready=1.0, assign=2.0, transfer=3.0, start=5.0, finish=9.0)
        assert e.transfer_time == pytest.approx(2.0)
        assert e.exec_time == pytest.approx(4.0)
        assert e.lambda_delay == pytest.approx(5.0)  # start - arrival(0)
        assert e.queue_wait == pytest.approx(4.0)  # start - ready

    def test_timeline_ordering_enforced(self):
        with pytest.raises(ValueError):
            entry(ready=5.0, assign=1.0)
        with pytest.raises(ValueError):
            entry(start=10.0, finish=10.0)  # zero-duration execution

    def test_no_transfer_means_equal_timestamps(self):
        e = entry(ready=0.0, start=0.0, finish=4.0)
        assert e.transfer_time == 0.0
        assert e.lambda_delay == 0.0

    def test_arrival_after_ready_rejected(self):
        with pytest.raises(ValueError, match="arrives"):
            ScheduleEntry(
                kernel_id=0,
                kernel="k",
                data_size=1,
                processor="cpu0",
                ptype="cpu",
                ready_time=0.0,
                assign_time=0.0,
                transfer_start=0.0,
                exec_start=0.0,
                finish_time=1.0,
                arrival_time=5.0,
            )


class TestSchedule:
    def test_makespan_is_latest_finish(self):
        s = Schedule([entry(kid=0, finish=10.0), entry(kid=1, proc="gpu0", finish=25.0)])
        assert s.makespan == 25.0

    def test_empty_schedule(self):
        s = Schedule()
        assert s.makespan == 0.0
        assert len(s) == 0

    def test_duplicate_kernel_rejected(self):
        with pytest.raises(ValueError):
            Schedule([entry(kid=1), entry(kid=1, proc="gpu0")])
        s = Schedule([entry(kid=1)])
        with pytest.raises(ValueError):
            s.add(entry(kid=1))

    def test_indexing(self):
        s = Schedule([entry(kid=3)])
        assert s[3].kernel_id == 3
        assert 3 in s and 4 not in s
        with pytest.raises(KeyError):
            s[4]

    def test_by_processor_groups_and_orders(self):
        s = Schedule(
            [
                entry(kid=0, proc="cpu0", ready=0.0, start=0.0, finish=5.0),
                entry(kid=1, proc="cpu0", ready=5.0, start=5.0, finish=9.0),
                entry(kid=2, proc="gpu0", ready=0.0, start=0.0, finish=3.0),
            ]
        )
        groups = s.by_processor()
        assert [e.kernel_id for e in groups["cpu0"]] == [0, 1]
        assert [e.kernel_id for e in groups["gpu0"]] == [2]


class TestValidation:
    @pytest.fixture
    def chain(self) -> DFG:
        return DFG.from_kernels(
            [KernelSpec("k", 100), KernelSpec("k", 100)], dependencies=[(0, 1)]
        )

    def test_valid_schedule_passes(self, chain):
        s = Schedule(
            [
                entry(kid=0, ready=0.0, start=0.0, finish=5.0),
                entry(kid=1, proc="gpu0", ready=5.0, start=5.0, finish=8.0),
            ]
        )
        s.validate(chain)

    def test_missing_kernel_detected(self, chain):
        s = Schedule([entry(kid=0)])
        with pytest.raises(ValueError, match="missing"):
            s.validate(chain)

    def test_extra_kernel_detected(self, chain):
        s = Schedule(
            [
                entry(kid=0, finish=5.0),
                entry(kid=1, ready=5.0, assign=5.0, start=5.0, finish=6.0, proc="gpu0"),
                entry(kid=7, proc="fpga0"),
            ]
        )
        with pytest.raises(ValueError, match="extra"):
            s.validate(chain)

    def test_processor_overlap_detected(self, chain):
        s = Schedule(
            [
                entry(kid=0, ready=0.0, start=0.0, finish=10.0),
                entry(kid=1, ready=0.0, start=5.0, finish=20.0),  # same cpu0!
            ]
        )
        with pytest.raises(ValueError, match="overlap"):
            s.validate(chain)

    def test_dependency_violation_detected(self, chain):
        s = Schedule(
            [
                entry(kid=0, ready=0.0, start=0.0, finish=10.0),
                # kernel 1 starts before its predecessor finished
                entry(kid=1, proc="gpu0", ready=0.0, start=3.0, finish=12.0),
            ]
        )
        with pytest.raises(ValueError, match="dependency"):
            s.validate(chain)

    def test_back_to_back_on_one_processor_allowed(self, chain):
        s = Schedule(
            [
                entry(kid=0, ready=0.0, start=0.0, finish=5.0),
                entry(kid=1, ready=5.0, start=5.0, finish=9.0),
            ]
        )
        s.validate(chain)
