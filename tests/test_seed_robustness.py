"""Seed robustness: the headline result must not be a seed artifact.

The evaluation graphs are regenerated (the paper's are unpublished), so
the α = 4 improvement claim is re-checked across several unrelated seeds
on reduced suites.  Slow-ish (~10 s) but it guards the core conclusion.
"""

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.experiments.workloads import paper_type2_suite

SEEDS = (7, 1234, 99991)


@pytest.mark.parametrize("seed", SEEDS)
def test_alpha4_improvement_positive_across_seeds(seed):
    runner = ExperimentRunner()
    suite = paper_type2_suite(seed=seed)[:5]
    met = runner.mean([r.makespan for r in runner.run_suite(suite, "met", 4.0)])
    apt = runner.mean(
        [r.makespan for r in runner.run_suite(suite, "apt", 4.0, alpha=4.0)]
    )
    improvement = (met - apt) / met * 100.0
    assert improvement > 3.0, f"seed {seed}: improvement only {improvement:.2f}%"


@pytest.mark.parametrize("seed", SEEDS)
def test_alpha_small_stays_met_like_across_seeds(seed):
    runner = ExperimentRunner()
    suite = paper_type2_suite(seed=seed)[:5]
    met = [r.makespan for r in runner.run_suite(suite, "met", 4.0)]
    apt = [r.makespan for r in runner.run_suite(suite, "apt", 4.0, alpha=1.5)]
    assert all(abs(a - m) / m < 0.03 for a, m in zip(apt, met))
