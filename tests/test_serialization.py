"""Unit tests for DFG JSON serialization."""

import pytest

from repro.graphs.serialization import (
    dfg_from_dict,
    dfg_to_dict,
    load_dfg,
    save_dfg,
)
from tests.conftest import make_synth_population
from tests.test_simulator import dfg_of


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self):
        dfg = dfg_of("fast_cpu", "fast_gpu", "uniform", deps=[(0, 2), (1, 2)])
        dfg.name = "rt"
        back = dfg_from_dict(dfg_to_dict(dfg))
        assert back.name == "rt"
        assert back.kernel_ids() == dfg.kernel_ids()
        assert back.edges() == dfg.edges()
        assert [back.spec(i) for i in back] == [dfg.spec(i) for i in dfg]

    def test_file_round_trip(self, tmp_path, rng):
        from repro.graphs.generators import make_type2_dfg

        dfg = make_type2_dfg(20, rng=rng, population=make_synth_population())
        path = tmp_path / "dfg.json"
        save_dfg(dfg, path)
        back = load_dfg(path)
        assert back.edges() == dfg.edges()
        assert [back.spec(i) for i in back] == [dfg.spec(i) for i in dfg]

    def test_unsupported_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            dfg_from_dict({"version": 99, "kernels": []})

    def test_malformed_kernels_rejected(self):
        with pytest.raises(ValueError, match="kernels"):
            dfg_from_dict({"version": 1, "kernels": "nope"})

    def test_cyclic_input_rejected(self):
        data = {
            "version": 1,
            "name": "bad",
            "kernels": [
                {"id": 0, "kernel": "k", "data_size": 1},
                {"id": 1, "kernel": "k", "data_size": 1},
            ],
            "dependencies": [[0, 1], [1, 0]],
        }
        with pytest.raises(ValueError):
            dfg_from_dict(data)

    def test_empty_graph_round_trip(self):
        from repro.graphs.dfg import DFG

        back = dfg_from_dict(dfg_to_dict(DFG("empty")))
        assert len(back) == 0
