"""Concurrency and robustness tests for the scenario service.

The satellite checklist of the service PR, verbatim:

* cancellation mid-run frees the worker (the job stops, the next job
  proceeds);
* double-cancel and poll-after-cancel are idempotent;
* a worker crash (a scenario whose policy raises) returns a failed job
  with a traceback instead of wedging the pool;
* queue-full returns 429.

Plus the layers underneath: the wire protocol, the fair gate's
round-robin guarantee, singleflight dedup, and the hand-rolled HTTP
server itself.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.system import CPU_GPU_FPGA
from repro.experiments.scenarios import ScenarioSpec, WorkloadSpec
from repro.experiments.sweep import PolicySpec, system_to_dict
from repro.service.client import ServiceClient
from repro.service.jobs import (
    FairGate,
    InlineExecutor,
    JobManager,
    ProcessExecutor,
    QueueFullError,
)
from repro.service.protocol import ProtocolError, SubmitRequest, paginate
from repro.service.server import run_service
from repro.service.store import SharedResultStore


def tiny_spec(
    seed: int = 1, policies: "tuple[str, ...]" = ("met",), n_kernels: int = 6
) -> dict:
    """A serialized single-unit pipeline scenario (one payload per policy)."""
    return ScenarioSpec(
        name=f"svc_test_{seed}",
        description="service test unit",
        system=system_to_dict(CPU_GPU_FPGA()),
        workload=WorkloadSpec.of(
            "pipeline", n_kernels=n_kernels, stage_width=2, seed=seed
        ),
        policies=tuple(
            PolicySpec.of(name, alpha=1.5) if name.startswith("apt") else PolicySpec.of(name)
            for name in policies
        ),
    ).to_dict()


def slow_spec(seed: int = 7) -> dict:
    """Six ~40 ms payloads: long enough to cancel mid-run reliably."""
    return tiny_spec(
        seed=seed,
        policies=("met", "spn", "ss", "ag", "heft", "peft"),
        n_kernels=120,
    )


def crash_spec(seed: int = 1) -> dict:
    """A spec whose policy name explodes inside the worker."""
    spec = tiny_spec(seed=seed)
    spec["policies"] = [{"name": "no_such_policy", "params": {}}]
    return spec


def run(coro):
    return asyncio.run(coro)


async def wait_for(predicate, timeout_s: float = 20.0) -> None:
    async def _poll():
        while not predicate():
            await asyncio.sleep(0.001)

    await asyncio.wait_for(_poll(), timeout=timeout_s)


# ----------------------------------------------------------------------
# protocol layer
# ----------------------------------------------------------------------
class TestProtocol:
    def test_submit_requires_exactly_one_of_scenario_or_spec(self):
        with pytest.raises(ProtocolError):
            SubmitRequest.from_dict({})
        with pytest.raises(ProtocolError):
            SubmitRequest.from_dict({"scenario": "x", "spec": {"name": "y"}})

    def test_submit_rejects_unknown_keys(self):
        with pytest.raises(ProtocolError, match="unknown submit keys"):
            SubmitRequest.from_dict({"scenario": "x", "priority": 9})

    def test_submit_rejects_non_object_body(self):
        with pytest.raises(ProtocolError):
            SubmitRequest.from_dict([1, 2, 3])

    def test_submit_defaults(self):
        request = SubmitRequest.from_dict({"scenario": "paper_type1"})
        assert request.client == "anonymous"
        assert request.settings == {}

    def test_paginate_rejects_bad_cursor(self):
        with pytest.raises(ProtocolError):
            paginate([], offset=-1)
        with pytest.raises(ProtocolError):
            paginate([], limit=0)

    def test_paginate_next_offset_chain(self):
        rows = [{"i": i} for i in range(5)]
        page = paginate(rows, offset=0, limit=2)
        assert [r["i"] for r in page.rows] == [0, 1]
        assert page.next_offset == 2
        last = paginate(rows, offset=4, limit=2)
        assert last.next_offset is None
        assert last.total == 5


# ----------------------------------------------------------------------
# fairness
# ----------------------------------------------------------------------
class TestFairGate:
    def test_fast_path(self):
        async def scenario():
            gate = FairGate(2)
            await gate.acquire("a")
            await gate.acquire("a")
            assert gate.busy == 2
            gate.release()
            assert gate.busy == 1

        run(scenario())

    def test_round_robin_across_clients(self):
        async def scenario():
            gate = FairGate(1)
            await gate.acquire("holder")
            grants: list[str] = []

            async def waiter(client: str) -> None:
                await gate.acquire(client)
                grants.append(client)

            # a floods three waiters before b arrives with one
            tasks = [asyncio.create_task(waiter("a")) for _ in range(3)]
            await asyncio.sleep(0)
            tasks.append(asyncio.create_task(waiter("b")))
            await asyncio.sleep(0)
            for _ in range(4):
                gate.release()
                await asyncio.sleep(0)
            await asyncio.gather(*tasks)
            # b's single payload is not starved behind a's backlog
            assert grants == ["a", "b", "a", "a"]

        run(scenario())

    def test_cancelled_waiter_is_skipped(self):
        async def scenario():
            gate = FairGate(1)
            await gate.acquire("holder")
            doomed = asyncio.create_task(gate.acquire("a"))
            survivor = asyncio.create_task(gate.acquire("b"))
            await asyncio.sleep(0)
            doomed.cancel()
            await asyncio.sleep(0)
            gate.release()
            await asyncio.wait_for(survivor, timeout=5)
            assert doomed.cancelled()
            assert gate.busy == 1

        run(scenario())


# ----------------------------------------------------------------------
# the job manager
# ----------------------------------------------------------------------
class TestJobManager:
    def manager(self, **kwargs) -> JobManager:
        kwargs.setdefault("executor", InlineExecutor(slots=2))
        return JobManager(**kwargs)

    def test_submit_runs_to_done(self):
        async def scenario():
            manager = self.manager()
            record = manager.submit(SubmitRequest.from_dict({"spec": tiny_spec()}))
            final = await manager.wait(record.id)
            assert final.state == "done"
            assert final.done == final.total == 1
            assert final.simulated == 1
            assert [e["event"] for e in final.events][0] == "submitted"
            assert [e["event"] for e in final.events][-1] == "done"
            await manager.close()

        run(scenario())

    def test_duplicate_submission_hits_store(self):
        async def scenario():
            manager = self.manager()
            first = manager.submit(SubmitRequest.from_dict({"spec": tiny_spec()}))
            await manager.wait(first.id)
            second = manager.submit(SubmitRequest.from_dict({"spec": tiny_spec()}))
            final = await manager.wait(second.id)
            assert final.state == "done"
            assert final.simulated == 0
            assert final.store_hits == 1
            assert final.rows == first.rows
            await manager.close()

        run(scenario())

    def test_concurrent_duplicates_coalesce_to_one_simulation(self):
        async def scenario():
            manager = self.manager()
            records = [
                manager.submit(
                    SubmitRequest.from_dict({"spec": tiny_spec(), "client": f"c{i}"})
                )
                for i in range(6)
            ]
            finals = [await manager.wait(r.id) for r in records]
            assert all(f.state == "done" for f in finals)
            assert sum(f.simulated for f in finals) == 1
            assert manager.store.puts == 1
            assert sum(f.coalesced + f.store_hits for f in finals) == 5
            assert all(f.rows == finals[0].rows for f in finals)
            await manager.close()

        run(scenario())

    def test_queue_full_raises(self):
        async def scenario():
            manager = self.manager(queue_limit=1)
            manager.submit(SubmitRequest.from_dict({"spec": slow_spec()}))
            with pytest.raises(QueueFullError):
                manager.submit(SubmitRequest.from_dict({"spec": tiny_spec()}))
            assert manager.counters["rejected"] == 1
            await manager.close()

        run(scenario())

    def test_cancel_mid_run_frees_the_worker(self):
        async def scenario():
            manager = self.manager(executor=InlineExecutor(slots=1))
            record = manager.submit(SubmitRequest.from_dict({"spec": slow_spec()}))
            await wait_for(lambda: record.done >= 1)
            manager.cancel(record.id)
            final = await manager.wait(record.id)
            assert final.state == "cancelled"
            assert 1 <= final.done < final.total
            # the slot is free again: the next job completes
            follow_up = manager.submit(SubmitRequest.from_dict({"spec": tiny_spec()}))
            assert (await manager.wait(follow_up.id)).state == "done"
            assert manager.gate.busy == 0
            await manager.close()

        run(scenario())

    def test_cancel_while_queued_behind_another_client(self):
        async def scenario():
            manager = self.manager(executor=InlineExecutor(slots=1))
            blocker = manager.submit(
                SubmitRequest.from_dict({"spec": slow_spec(), "client": "a"})
            )
            victim = manager.submit(
                SubmitRequest.from_dict({"spec": tiny_spec(seed=99), "client": "b"})
            )
            manager.cancel(victim.id)
            final = await manager.wait(victim.id)
            assert final.state == "cancelled"
            assert final.done == 0
            assert (await manager.wait(blocker.id)).state == "done"
            assert manager.gate.busy == 0
            await manager.close()

        run(scenario())

    def test_double_cancel_is_idempotent(self):
        async def scenario():
            manager = self.manager(executor=InlineExecutor(slots=1))
            record = manager.submit(SubmitRequest.from_dict({"spec": slow_spec()}))
            manager.cancel(record.id)
            manager.cancel(record.id)
            final = await manager.wait(record.id)
            assert final.state == "cancelled"
            manager.cancel(record.id)  # after terminal: no state change
            assert final.state == "cancelled"
            assert manager.counters["cancelled"] == 1
            cancel_events = [
                e for e in final.events if e["event"] == "cancel_requested"
            ]
            assert len(cancel_events) == 1
            await manager.close()

        run(scenario())

    def test_worker_crash_fails_job_with_traceback(self):
        async def scenario():
            manager = self.manager()
            record = manager.submit(SubmitRequest.from_dict({"spec": crash_spec()}))
            final = await manager.wait(record.id)
            assert final.state == "failed"
            assert final.error is not None
            assert "no_such_policy" in final.error
            # the executor is not wedged: the next job completes
            follow_up = manager.submit(SubmitRequest.from_dict({"spec": tiny_spec()}))
            assert (await manager.wait(follow_up.id)).state == "done"
            await manager.close()

        run(scenario())

    def test_worker_crash_does_not_wedge_the_process_pool(self):
        async def scenario():
            manager = self.manager(executor=ProcessExecutor(workers=2))
            crash = manager.submit(SubmitRequest.from_dict({"spec": crash_spec()}))
            final = await manager.wait(crash.id)
            assert final.state == "failed"
            assert final.error is not None and "no_such_policy" in final.error
            # same pool, fresh job: still serves
            good = manager.submit(SubmitRequest.from_dict({"spec": tiny_spec()}))
            assert (await manager.wait(good.id)).state == "done"
            await manager.close()

        run(scenario())

    def test_crash_fails_coalesced_followers_too(self):
        async def scenario():
            manager = self.manager(executor=InlineExecutor(slots=1))
            records = [
                manager.submit(
                    SubmitRequest.from_dict({"spec": crash_spec(), "client": f"c{i}"})
                )
                for i in range(3)
            ]
            finals = [await manager.wait(r.id) for r in records]
            assert all(f.state == "failed" for f in finals)
            assert all(f.error and "no_such_policy" in f.error for f in finals)
            await manager.close()

        run(scenario())

    def test_unknown_scenario_is_a_protocol_error(self):
        async def scenario():
            manager = self.manager()
            with pytest.raises(ProtocolError) as exc:
                manager.submit(SubmitRequest.from_dict({"scenario": "nope"}))
            assert exc.value.status == 404
            await manager.close()

        run(scenario())

    def test_settings_override_changes_the_cache_key(self):
        async def scenario():
            manager = self.manager()
            base = manager.submit(SubmitRequest.from_dict({"spec": tiny_spec()}))
            await manager.wait(base.id)
            tweaked = manager.submit(
                SubmitRequest.from_dict(
                    {"spec": tiny_spec(), "settings": {"noise_seed": 5}}
                )
            )
            final = await manager.wait(tweaked.id)
            assert final.state == "done"
            assert final.simulated == 1  # different settings: no store hit
            with pytest.raises(ProtocolError, match="unknown settings"):
                manager.submit(
                    SubmitRequest.from_dict(
                        {"spec": tiny_spec(), "settings": {"bogus": 1}}
                    )
                )
            await manager.close()

        run(scenario())


# ----------------------------------------------------------------------
# the HTTP layer, end to end
# ----------------------------------------------------------------------
class TestServiceHTTP:
    def test_health_stats_and_routing(self):
        with run_service(slots=1) as server:
            client = ServiceClient(server.address)
            assert client.health() == (200, {"status": "ok"})
            status, stats = client.stats()
            assert status == 200
            assert stats["active"] == 0
            assert stats["gate"]["capacity"] == 1
            assert client.status("j999999")[0] == 404
            assert client.cancel("j999999")[0] == 404
            assert client.request("GET", "/nope")[0] == 404
            assert client.request("GET", "/scenarios")[0] == 405

    def test_submit_poll_result_roundtrip(self):
        with run_service(slots=2) as server:
            client = ServiceClient(server.address)
            status, body = client.submit(
                spec=tiny_spec(policies=("met", "spn")), client="roundtrip"
            )
            assert status == 202
            job = client.wait(body["job"]["id"])
            assert job["state"] == "done"
            assert job["total"] == 2
            status, page = client.result(job["id"], offset=0, limit=1)
            assert status == 200
            assert page["complete"] is True
            assert page["total"] == 2
            assert page["next_offset"] == 1
            rows = client.fetch_rows(job["id"], limit=1)
            assert [r["policy_name"] for r in rows] == ["met", "spn"]

    def test_bad_requests(self):
        with run_service(slots=1) as server:
            client = ServiceClient(server.address)
            status, body = client.request("POST", "/scenarios", {"spec": {}})
            assert status == 400
            status, body = client.request("POST", "/scenarios", {})
            assert status == 400
            assert "error" in body
            status, body = client.submit(scenario="no_such_scenario")
            assert status == 404
            # malformed JSON body
            import urllib.request

            req = urllib.request.Request(
                server.address + "/scenarios",
                data=b"{not json",
                method="POST",
            )
            try:
                urllib.request.urlopen(req)
                raised = None
            except urllib.error.HTTPError as exc:
                raised = exc.code
            assert raised == 400

    def test_queue_full_returns_429(self):
        with run_service(slots=1, queue_limit=1) as server:
            client = ServiceClient(server.address)
            status, first = client.submit(spec=slow_spec())
            assert status == 202
            status, body = client.submit(spec=tiny_spec(seed=2))
            assert status == 429
            assert body["limit"] == 1
            assert client.wait(first["job"]["id"])["state"] == "done"

    def test_cancel_over_http_is_idempotent(self):
        with run_service(slots=1) as server:
            client = ServiceClient(server.address)
            _, body = client.submit(spec=slow_spec())
            job_id = body["job"]["id"]
            status, first = client.cancel(job_id)
            assert status == 200
            status, second = client.cancel(job_id)
            assert status == 200
            assert second["job"]["cancel_requested"] is True
            final = client.wait(job_id)
            assert final["state"] == "cancelled"
            # poll-after-cancel keeps answering, bit-stable
            assert client.status(job_id)[1]["job"]["state"] == "cancelled"
            status, page = client.result(job_id)
            assert status == 200
            assert page["complete"] is True
            assert len(page["rows"]) == final["done"]

    def test_failed_job_reports_error_over_http(self):
        with run_service(slots=1) as server:
            client = ServiceClient(server.address)
            _, body = client.submit(spec=crash_spec())
            final = client.wait(body["job"]["id"])
            assert final["state"] == "failed"
            assert "no_such_policy" in final["error"]
            status, page = client.result(final["id"])
            assert status == 200
            assert "no_such_policy" in page["error"]

    def test_registered_scenario_by_name(self):
        with run_service(slots=2) as server:
            client = ServiceClient(server.address)
            status, body = client.submit(
                scenario="paper_type1", settings={"backend": None}
            )
            assert status == 202
            job_id = body["job"]["id"]
            # a registered scenario expands to the full policy grid
            job = client.wait(job_id)
            assert job["state"] == "done"
            assert job["total"] == 70
            status, page = client.result(job_id, limit=10)
            assert page["total"] == 70
            assert len(page["rows"]) == 10

    def test_stats_counts_store_activity(self):
        with run_service(slots=2) as server:
            client = ServiceClient(server.address)
            for _ in range(2):
                _, body = client.submit(spec=tiny_spec())
                client.wait(body["job"]["id"])
            _, stats = client.stats()
            assert stats["jobs"]["submitted"] == 2
            assert stats["jobs"]["completed"] == 2
            assert stats["store"]["puts"] == 1

    def test_stats_reports_engine_section(self):
        from repro.core._kernels import numba_available
        from repro.core.engine import resolve_backend

        with run_service() as server:
            client = ServiceClient(server.address)
            _, stats = client.stats()
            engine = stats["engine"]
            assert engine["backend"] == resolve_backend(None)
            assert engine["jit"]["numba_available"] is numba_available()
            assert "active" in engine["jit"]
            assert engine["totals"]["runs"] >= 0
            # array-backend payloads feed the in-process accumulator
            if engine["backend"] == "array":
                _, body = client.submit(spec=tiny_spec())
                client.wait(body["job"]["id"])
                _, stats = client.stats()
                assert stats["engine"]["totals"]["runs"] >= 1
