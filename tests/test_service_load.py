"""Load/soak test for the scenario service (satellite of PR 8).

Runs the full :mod:`tools.load_test` harness in-process: ≥200 concurrent
submissions over 20 unique specs, then asserts the acceptance bars —
exact dedup (one simulation per unique spec), zero dropped accepted
jobs, and a recorded p99 poll latency — and that the report landed in
``results/local/service_load.txt``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

TOOLS_DIR = Path(__file__).resolve().parent.parent / "tools"
if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))

import load_test  # noqa: E402


@pytest.fixture(scope="module")
def report(tmp_path_factory: pytest.TempPathFactory) -> dict[str, object]:
    out = tmp_path_factory.mktemp("load") / "service_load.txt"
    result = load_test.run_load_test(
        n_requests=200, n_unique=20, n_clients=8, slots=4, out=out
    )
    result["__out__"] = out
    return result


class TestLoad:
    def test_invariants_hold(self, report: dict[str, object]) -> None:
        assert load_test.check_invariants(report) == []

    def test_all_requests_accepted(self, report: dict[str, object]) -> None:
        assert report["accepted"] == 200
        assert report["rejected"] == 0
        assert report["errors"] == 0

    def test_exact_dedup(self, report: dict[str, object]) -> None:
        # exactly one simulation per unique spec; every duplicate was
        # served from the shared store or coalesced onto an in-flight
        # simulation.
        assert report["simulated"] == 20
        assert report["store_puts"] == 20
        assert report["served_from_cache"] == report["duplicates"] == 180
        assert report["dedup_ratio"] == 1.0

    def test_no_dropped_accepted_jobs(self, report: dict[str, object]) -> None:
        assert report["dropped_accepted"] == 0
        assert report["states"] == {"done": 200}

    def test_poll_latency_recorded(self, report: dict[str, object]) -> None:
        assert report["poll_count"] > 0
        assert report["poll_p99_ms"] >= report["poll_p50_ms"] >= 0.0

    def test_report_written(self, report: dict[str, object]) -> None:
        out = report["__out__"]
        assert isinstance(out, Path) and out.exists()
        text = out.read_text(encoding="utf-8")
        assert "dedup_ratio" in text
        assert "poll_p99_ms" in text


class TestHarnessUnits:
    def test_make_specs_are_distinct(self) -> None:
        specs = load_test.make_specs(5)
        seeds = [spec["workload"]["params"]["seed"] for spec in specs]
        assert len(set(seeds)) == 5

    def test_percentile_bounds(self) -> None:
        values = [float(v) for v in range(1, 101)]
        assert load_test.percentile(values, 0.0) == 1.0
        assert load_test.percentile(values, 1.0) == 100.0
        assert load_test.percentile([], 0.99) == 0.0

    def test_check_invariants_flags_problems(self) -> None:
        bad = {
            "rejected": 1,
            "errors": 0,
            "dropped_accepted": 2,
            "simulated": 3,
            "unique_specs": 5,
            "store_puts": 4,
        }
        problems = load_test.check_invariants(bad)
        assert len(problems) == 4
