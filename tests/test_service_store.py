"""Property tests for the shared result store and result pagination.

Two invariants the service API leans on:

* **Pagination round-trip** — following ``next_offset`` from 0 with any
  positive page size reassembles the exact unpaginated row sequence
  (hypothesis-driven over arbitrary row lists and limits).
* **Cross-instance cache sharing** — two server instances pointed at
  the same ``store_dir`` serve bit-identical rows: the second instance
  performs zero simulations and answers entirely from disk.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.system import CPU_GPU_FPGA
from repro.experiments.scenarios import ScenarioSpec, WorkloadSpec
from repro.experiments.sweep import SWEEP_FORMAT_VERSION, PolicySpec, system_to_dict
from repro.service.client import ServiceClient
from repro.service.protocol import ProtocolError, paginate
from repro.service.server import run_service
from repro.service.store import SharedResultStore

# ----------------------------------------------------------------------
# pagination round-trip
# ----------------------------------------------------------------------
row_strategy = st.fixed_dictionaries(
    {
        "dfg": st.text(min_size=1, max_size=8),
        "policy": st.sampled_from(["met", "spn", "heft"]),
        "makespan": st.floats(
            min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
    }
)


class TestPaginationProperties:
    @settings(max_examples=200, deadline=None)
    @given(rows=st.lists(row_strategy, max_size=40), limit=st.integers(1, 50))
    def test_pages_reassemble_exactly(self, rows: list[dict], limit: int) -> None:
        reassembled: list[dict] = []
        offset: "int | None" = 0
        pages = 0
        while offset is not None:
            page = paginate(rows, offset, limit)
            assert page.total == len(rows)
            assert len(page.rows) <= limit
            reassembled.extend(page.rows)
            offset = page.next_offset
            pages += 1
            assert pages <= len(rows) + 1  # cursor always advances
        assert reassembled == rows

    @settings(max_examples=100, deadline=None)
    @given(
        rows=st.lists(row_strategy, max_size=30),
        offset=st.integers(0, 40),
        limit=st.integers(1, 40),
    )
    def test_page_is_exact_slice(
        self, rows: list[dict], offset: int, limit: int
    ) -> None:
        page = paginate(rows, offset, limit)
        assert list(page.rows) == rows[offset : offset + limit]
        if page.next_offset is not None:
            assert page.next_offset == offset + len(page.rows)
            assert page.next_offset < len(rows)

    def test_bad_cursor_rejected(self) -> None:
        with pytest.raises(ProtocolError):
            paginate([], offset=-1)
        with pytest.raises(ProtocolError):
            paginate([], limit=0)


# ----------------------------------------------------------------------
# store layering properties
# ----------------------------------------------------------------------
key_strategy = st.text(
    alphabet="0123456789abcdef", min_size=8, max_size=16
).map(lambda s: f"k{s}")


class TestStoreProperties:
    @settings(max_examples=50, deadline=None)
    @given(entries=st.dictionaries(key_strategy, row_strategy, max_size=10))
    def test_memory_store_round_trips(self, entries: dict[str, dict]) -> None:
        store = SharedResultStore()
        for key, record in entries.items():
            store.put(key, record)
        for key, record in entries.items():
            assert store.get(key) == record
            assert key in store
        assert store.get("missing") is None
        assert store.puts == len(entries)

    def test_disk_layer_survives_new_instance(self, tmp_path: Path) -> None:
        # the disk layer rejects records from other sweep format
        # versions, so a valid record must carry the current version —
        # exactly as execute_payload's records do.
        record = {"version": SWEEP_FORMAT_VERSION, "makespan": 1.5}
        first = SharedResultStore(tmp_path / "store")
        first.put("abc", record)
        second = SharedResultStore(tmp_path / "store")
        assert second.get("abc") == record
        assert "abc" in second
        assert second.stats()["hits"] == 1

    def test_disk_layer_ignores_stale_format_versions(self, tmp_path: Path) -> None:
        first = SharedResultStore(tmp_path / "store")
        first.put("old", {"version": -1, "makespan": 1.5})
        second = SharedResultStore(tmp_path / "store")
        assert second.get("old") is None


# ----------------------------------------------------------------------
# two servers, one store dir
# ----------------------------------------------------------------------
def _spec() -> dict:
    return ScenarioSpec(
        name="shared_store_probe",
        description="cross-instance cache sharing",
        system=system_to_dict(CPU_GPU_FPGA()),
        workload=WorkloadSpec.of("pipeline", n_kernels=8, stage_width=2, seed=424),
        policies=(PolicySpec.of("met"), PolicySpec.of("heft")),
    ).to_dict()


class TestCrossInstanceSharing:
    def test_second_server_serves_bit_identical_rows(self, tmp_path: Path) -> None:
        store_dir = str(tmp_path / "shared")
        spec = _spec()

        def _run_once() -> tuple[list[dict], dict]:
            with run_service(store_dir=store_dir) as server:
                client = ServiceClient(server.address)
                _, body = client.submit(spec=spec)
                job = client.wait(body["job"]["id"])
                rows = client.fetch_rows(job["id"])
                return rows, job

        rows_a, job_a = _run_once()
        rows_b, job_b = _run_once()

        assert job_a["state"] == job_b["state"] == "done"
        # first instance simulated everything; the second answered
        # entirely from the shared disk store.
        assert job_a["simulated"] == 2
        assert job_b["simulated"] == 0
        assert job_b["store_hits"] == 2
        # bit-identical: same JSON serialisation, not just same floats.
        assert json.dumps(rows_a, sort_keys=True) == json.dumps(rows_b, sort_keys=True)
