"""Unit and behavioural tests for the discrete-event simulator."""

import pytest

from repro.core.simulator import SchedulingError, Simulator
from repro.core.system import CPU_GPU_FPGA
from repro.graphs.dfg import DFG
from repro.policies.apt import APT
from repro.policies.base import Assignment, DynamicPolicy
from repro.policies.met import MET
from repro.policies.olb import OLB
from tests.conftest import spec


def dfg_of(*kernels: str, deps=()) -> DFG:
    return DFG.from_kernels([spec(k) for k in kernels], dependencies=deps)


class TestSingleKernel:
    def test_runs_on_best_processor(self, synth_sim):
        result = synth_sim.run(dfg_of("fast_gpu"), MET())
        e = result.schedule[0]
        assert e.processor == "gpu0"
        assert e.exec_start == 0.0
        assert e.finish_time == pytest.approx(10.0)
        assert result.makespan == pytest.approx(10.0)

    def test_entry_kernel_has_no_transfer(self, synth_sim):
        result = synth_sim.run(dfg_of("fast_cpu"), MET())
        assert result.schedule[0].transfer_time == 0.0

    def test_empty_dfg(self, synth_sim):
        result = synth_sim.run(DFG(), MET())
        assert result.makespan == 0.0
        assert len(result.schedule) == 0


class TestDependenciesAndTransfers:
    def test_chain_respects_dependency(self, synth_sim):
        result = synth_sim.run(dfg_of("fast_cpu", "fast_cpu", deps=[(0, 1)]), MET())
        e0, e1 = result.schedule[0], result.schedule[1]
        assert e1.transfer_start >= e0.finish_time
        assert e1.ready_time == pytest.approx(e0.finish_time)

    def test_same_processor_chain_has_no_transfer(self, synth_sim):
        result = synth_sim.run(dfg_of("fast_cpu", "fast_cpu", deps=[(0, 1)]), MET())
        assert result.schedule[1].transfer_time == 0.0

    def test_cross_processor_transfer_charged(self, synth_sim):
        # fast_cpu on cpu0, then fast_gpu on gpu0: 1e6 elements × 4 B at
        # 4 GB/s = exactly 1 ms of transfer.
        result = synth_sim.run(dfg_of("fast_cpu", "fast_gpu", deps=[(0, 1)]), MET())
        e1 = result.schedule[1]
        assert e1.processor == "gpu0"
        assert e1.transfer_time == pytest.approx(1.0)
        assert result.makespan == pytest.approx(10.0 + 1.0 + 10.0)

    def test_transfers_disabled(self, synth_sim_no_transfer):
        result = synth_sim_no_transfer.run(
            dfg_of("fast_cpu", "fast_gpu", deps=[(0, 1)]), MET()
        )
        assert result.schedule[1].transfer_time == 0.0
        assert result.makespan == pytest.approx(20.0)

    def test_single_mode_takes_max_over_cross_predecessors(self, system, synth_lookup):
        # Diamond: two predecessors on two different processors; "single"
        # mode charges one inbound transfer (the max), not the sum.
        sim = Simulator(system, synth_lookup, transfer_mode="single")
        dfg = dfg_of("fast_cpu", "fast_gpu", "fast_fpga", deps=[(0, 2), (1, 2)])
        result = sim.run(dfg, MET())
        assert result.schedule[2].transfer_time == pytest.approx(1.0)

    def test_per_predecessor_mode_sums(self, system, synth_lookup):
        sim = Simulator(system, synth_lookup, transfer_mode="per_predecessor")
        dfg = dfg_of("fast_cpu", "fast_gpu", "fast_fpga", deps=[(0, 2), (1, 2)])
        result = sim.run(dfg, MET())
        assert result.schedule[2].transfer_time == pytest.approx(2.0)

    def test_element_size_scales_transfer(self, system, synth_lookup):
        sim = Simulator(system, synth_lookup, element_size=8)
        result = sim.run(dfg_of("fast_cpu", "fast_gpu", deps=[(0, 1)]), MET())
        assert result.schedule[1].transfer_time == pytest.approx(2.0)

    def test_faster_links_shrink_transfer(self, synth_lookup):
        sim = Simulator(CPU_GPU_FPGA(transfer_rate_gbps=8.0), synth_lookup)
        result = sim.run(dfg_of("fast_cpu", "fast_gpu", deps=[(0, 1)]), MET())
        assert result.schedule[1].transfer_time == pytest.approx(0.5)


class TestParallelExecution:
    def test_independent_kernels_run_concurrently(self, synth_sim):
        dfg = dfg_of("fast_cpu", "fast_gpu", "fast_fpga")
        result = synth_sim.run(dfg, MET())
        assert result.makespan == pytest.approx(10.0)
        assert {e.processor for e in result.schedule} == {"cpu0", "gpu0", "fpga0"}

    def test_met_waits_for_best_processor(self, synth_sim):
        # Three fast_gpu kernels: MET serializes them all on the GPU.
        result = synth_sim.run(dfg_of("fast_gpu", "fast_gpu", "fast_gpu"), MET())
        assert all(e.processor == "gpu0" for e in result.schedule)
        assert result.makespan == pytest.approx(30.0)

    def test_lambda_counts_waiting(self, synth_sim):
        result = synth_sim.run(dfg_of("fast_gpu", "fast_gpu"), MET())
        lam = result.metrics.lambda_stats
        assert lam.count == 1  # second kernel waited
        assert lam.total == pytest.approx(10.0)


class TestValidationAndErrors:
    def test_invalid_transfer_mode(self, system, synth_lookup):
        with pytest.raises(ValueError):
            Simulator(system, synth_lookup, transfer_mode="bogus")

    def test_invalid_element_size(self, system, synth_lookup):
        with pytest.raises(ValueError):
            Simulator(system, synth_lookup, element_size=0)

    def test_policy_assigning_unready_kernel_rejected(self, synth_sim):
        class Premature(DynamicPolicy):
            name = "premature"

            def select(self, ctx):
                return [Assignment(kernel_id=99, processor="cpu0")]

        with pytest.raises(SchedulingError, match="not ready"):
            synth_sim.run(dfg_of("fast_cpu"), Premature())

    def test_policy_assigning_to_unknown_processor_rejected(self, synth_sim):
        class Ghost(DynamicPolicy):
            name = "ghost"

            def select(self, ctx):
                return [Assignment(kernel_id=ctx.ready[0], processor="tpu0")]

        with pytest.raises(SchedulingError, match="unknown processor"):
            synth_sim.run(dfg_of("fast_cpu"), Ghost())

    def test_nonqueued_assignment_to_busy_processor_rejected(self, synth_sim):
        class DoubleBook(DynamicPolicy):
            name = "doublebook"

            def select(self, ctx):
                return [Assignment(kernel_id=k, processor="cpu0") for k in ctx.ready]

        with pytest.raises(SchedulingError, match="busy processor"):
            synth_sim.run(dfg_of("fast_cpu", "fast_cpu"), DoubleBook())

    def test_deadlocking_policy_detected(self, synth_sim):
        class Lazy(DynamicPolicy):
            name = "lazy"

            def select(self, ctx):
                return []

        with pytest.raises(SchedulingError, match="deadlock"):
            synth_sim.run(dfg_of("fast_cpu"), Lazy())

    def test_unsupported_policy_type(self, synth_sim):
        with pytest.raises(TypeError):
            synth_sim.run(dfg_of("fast_cpu"), object())


class TestDeterminismAndResults:
    def test_rerun_is_bitwise_identical(self, synth_sim):
        dfg = dfg_of("fast_cpu", "fast_gpu", "fast_fpga", "uniform", deps=[(0, 3)])
        a = synth_sim.run(dfg, APT(alpha=4.0))
        b = synth_sim.run(dfg, APT(alpha=4.0))
        assert [(e.kernel_id, e.processor, e.exec_start) for e in a.schedule] == [
            (e.kernel_id, e.processor, e.exec_start) for e in b.schedule
        ]

    def test_schedule_validates_against_dfg(self, synth_sim):
        dfg = dfg_of("fast_cpu", "fast_gpu", "uniform", deps=[(0, 2), (1, 2)])
        result = synth_sim.run(dfg, OLB())
        result.schedule.validate(dfg)  # must not raise

    def test_result_carries_policy_metadata(self, synth_sim):
        result = synth_sim.run(dfg_of("fast_cpu"), APT(alpha=2.0))
        assert result.policy_name == "apt"
        assert result.policy_stats["alpha"] == 2.0

    def test_trace_collection_optional(self, system, synth_lookup):
        sim = Simulator(system, synth_lookup, collect_trace=True)
        result = sim.run(dfg_of("fast_cpu"), MET())
        assert result.trace is not None and len(result.trace) >= 1
        assert synth_sim_result_has_no_trace(Simulator(system, synth_lookup))


def synth_sim_result_has_no_trace(sim: Simulator) -> bool:
    result = sim.run(dfg_of("fast_cpu"), MET())
    return result.trace is None
