"""Bit-for-bit equivalence of the incremental and reference inner loops.

The optimized :class:`~repro.core.simulator.Simulator` must reproduce the
pre-refactor :class:`~repro.core.reference.ReferenceSimulator` *exactly* —
every :class:`~repro.core.schedule.ScheduleEntry` field of every kernel —
across all registered policies, both paper DFG shapes, streaming
arrivals, and execution noise.  Both engines share the policies and the
CostModel; only the event-loop bookkeeping differs, so any divergence is
a hot-path bug.
"""

from __future__ import annotations

import pytest

from repro.core.reference import ReferenceSimulator
from repro.core.simulator import Simulator
from repro.core.system import CPU_GPU_FPGA
from repro.data.paper_tables import paper_lookup_table
from repro.experiments.workloads import (
    paper_suite,
    scale_system,
    streaming_scale_workload,
)
from repro.policies.registry import available_policies, get_policy

ALL_POLICIES = available_policies()


@pytest.fixture(scope="module")
def lookup():
    return paper_lookup_table()


@pytest.fixture(scope="module")
def system():
    return CPU_GPU_FPGA(transfer_rate_gbps=4.0)


def assert_identical_runs(sim_kwargs, dfg, policy_name, arrivals=None):
    system = sim_kwargs.pop("system")
    lookup = sim_kwargs.pop("lookup")
    fast = Simulator(system, lookup, **sim_kwargs).run(
        dfg, get_policy(policy_name), arrivals=arrivals
    )
    slow = ReferenceSimulator(system, lookup, **sim_kwargs).run(
        dfg, get_policy(policy_name), arrivals=arrivals
    )
    # ScheduleEntry is a frozen dataclass: == compares every field.
    assert list(fast.schedule) == list(slow.schedule), (
        f"schedule divergence: {policy_name} on {dfg.name}"
    )
    assert fast.metrics == slow.metrics
    assert fast.policy_stats == slow.policy_stats


class TestFullPaperSuite:
    """The acceptance matrix: every policy × every graph of both suites."""

    @pytest.mark.parametrize("policy_name", ALL_POLICIES)
    @pytest.mark.parametrize("dfg_type", [1, 2])
    def test_policy_on_full_suite(self, policy_name, dfg_type, system, lookup):
        for dfg in paper_suite(dfg_type):
            assert_identical_runs(
                {"system": system, "lookup": lookup}, dfg, policy_name
            )


class TestTransfersDisabled:
    @pytest.mark.parametrize("policy_name", ALL_POLICIES)
    def test_disabled_transfers_equivalence(self, policy_name, system, lookup):
        # one mid-size graph per suite keeps this matrix quick
        for dfg_type in (1, 2):
            dfg = paper_suite(dfg_type)[3]
            assert_identical_runs(
                {"system": system, "lookup": lookup, "transfers_enabled": False},
                dfg,
                policy_name,
            )


class TestExecutionNoise:
    @pytest.mark.parametrize("policy_name", ALL_POLICIES)
    def test_noise_equivalence(self, policy_name, system, lookup):
        dfg = paper_suite(1)[2]
        assert_identical_runs(
            {
                "system": system,
                "lookup": lookup,
                "exec_noise_sigma": 0.25,
                "noise_seed": 7,
            },
            dfg,
            policy_name,
        )


class TestStreamingArrivals:
    @pytest.mark.parametrize("policy_name", ALL_POLICIES)
    def test_streaming_equivalence(self, policy_name, lookup):
        dfg, arrivals = streaming_scale_workload(
            n_kernels=250, seed=11, mean_interarrival_ms=2000.0
        )
        assert_identical_runs(
            {"system": scale_system(n_cpu=2, n_gpu=2, n_fpga=2), "lookup": lookup},
            dfg,
            policy_name,
            arrivals=arrivals,
        )

    @pytest.mark.parametrize("policy_name", ["apt", "apt_rt", "met", "ag", "heft"])
    def test_streaming_with_noise_equivalence(self, policy_name, lookup):
        dfg, arrivals = streaming_scale_workload(
            n_kernels=200, seed=3, mean_interarrival_ms=1500.0
        )
        assert_identical_runs(
            {
                "system": scale_system(n_cpu=2, n_gpu=2, n_fpga=2),
                "lookup": lookup,
                "exec_noise_sigma": 0.3,
                "noise_seed": 42,
            },
            dfg,
            policy_name,
            arrivals=arrivals,
        )
