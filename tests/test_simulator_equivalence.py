"""Bit-for-bit equivalence of the incremental and reference inner loops.

The optimized :class:`~repro.core.simulator.Simulator` must reproduce the
pre-refactor :class:`~repro.core.reference.ReferenceSimulator` *exactly* —
every :class:`~repro.core.schedule.ScheduleEntry` field of every kernel —
across all registered policies, both paper DFG shapes, streaming
arrivals, and execution noise.  Both engines share the policies and the
CostModel; only the event-loop bookkeeping differs, so any divergence is
a hot-path bug.
"""

from __future__ import annotations

import pytest

from repro.core._kernels import numba_available
from repro.core.reference import ReferenceSimulator
from repro.core.simulator import Simulator
from repro.core.system import CPU_GPU_FPGA, Processor, SystemConfig
from repro.core.topology import bus_topology, star_topology
from repro.data.paper_tables import (
    FIGURE5_KERNELS,
    figure5_lookup_table,
    paper_lookup_table,
)
from repro.graphs.dfg import DFG
from repro.policies.apt import APT
from repro.policies.met import MET
from repro.experiments.workloads import (
    paper_suite,
    scale_system,
    streaming_scale_workload,
)
from repro.policies.registry import available_policies, get_policy

ALL_POLICIES = available_policies()


def star_twin(flat: SystemConfig, contention: bool = False) -> SystemConfig:
    """The star-topology expression of a flat uniform-rate system."""
    procs = [Processor(p.name, p.ptype) for p in flat]
    return SystemConfig(
        procs,
        topology=star_topology(
            [p.name for p in procs],
            rate_gbps=flat.default_rate_gbps,
            contention=contention,
        ),
    )


@pytest.fixture(scope="module")
def lookup():
    return paper_lookup_table()


@pytest.fixture(scope="module")
def system():
    return CPU_GPU_FPGA(transfer_rate_gbps=4.0)


def assert_identical_runs(sim_kwargs, dfg, policy_name, arrivals=None):
    system = sim_kwargs.pop("system")
    lookup = sim_kwargs.pop("lookup")
    fast = Simulator(system, lookup, **sim_kwargs).run(
        dfg, get_policy(policy_name), arrivals=arrivals
    )
    slow = ReferenceSimulator(system, lookup, **sim_kwargs).run(
        dfg, get_policy(policy_name), arrivals=arrivals
    )
    # ScheduleEntry is a frozen dataclass: == compares every field.
    assert list(fast.schedule) == list(slow.schedule), (
        f"schedule divergence: {policy_name} on {dfg.name}"
    )
    assert fast.metrics == slow.metrics
    assert fast.policy_stats == slow.policy_stats
    # third axis: the struct-of-arrays backend must land on the same
    # bits as both object-graph engines
    arr = Simulator(system, lookup, backend="array", **sim_kwargs).run(
        dfg, get_policy(policy_name), arrivals=arrivals
    )
    assert list(arr.schedule) == list(fast.schedule), (
        f"array-backend divergence: {policy_name} on {dfg.name}"
    )
    assert arr.metrics == fast.metrics
    assert arr.policy_stats == fast.policy_stats
    # fourth axis, CI's numba leg only: the compiled _kernels twins must
    # land on the same bits.  Without numba, jit="on" resolves to the
    # very fallback just asserted above — skip the redundant run.
    if numba_available():
        jit = Simulator(system, lookup, backend="array", jit="on",
                        **sim_kwargs).run(
            dfg, get_policy(policy_name), arrivals=arrivals
        )
        assert list(jit.schedule) == list(fast.schedule), (
            f"jit-kernel divergence: {policy_name} on {dfg.name}"
        )
        assert jit.metrics == fast.metrics
        assert jit.policy_stats == fast.policy_stats


class TestFullPaperSuite:
    """The acceptance matrix: every policy × every graph of both suites."""

    @pytest.mark.parametrize("policy_name", ALL_POLICIES)
    @pytest.mark.parametrize("dfg_type", [1, 2])
    def test_policy_on_full_suite(self, policy_name, dfg_type, system, lookup):
        for dfg in paper_suite(dfg_type):
            assert_identical_runs(
                {"system": system, "lookup": lookup}, dfg, policy_name
            )


class TestTransfersDisabled:
    @pytest.mark.parametrize("policy_name", ALL_POLICIES)
    def test_disabled_transfers_equivalence(self, policy_name, system, lookup):
        # one mid-size graph per suite keeps this matrix quick
        for dfg_type in (1, 2):
            dfg = paper_suite(dfg_type)[3]
            assert_identical_runs(
                {"system": system, "lookup": lookup, "transfers_enabled": False},
                dfg,
                policy_name,
            )


class TestExecutionNoise:
    @pytest.mark.parametrize("policy_name", ALL_POLICIES)
    def test_noise_equivalence(self, policy_name, system, lookup):
        dfg = paper_suite(1)[2]
        assert_identical_runs(
            {
                "system": system,
                "lookup": lookup,
                "exec_noise_sigma": 0.25,
                "noise_seed": 7,
            },
            dfg,
            policy_name,
        )


class TestStarTopologyEquivalence:
    """A uniform star topology must reproduce the flat link table exactly."""

    @pytest.mark.parametrize("policy_name", ALL_POLICIES)
    def test_star_equals_flat_bit_for_bit(self, policy_name, system, lookup):
        dfg = paper_suite(1)[1]
        star = star_twin(system)
        flat_run = Simulator(system, lookup).run(dfg, get_policy(policy_name))
        star_run = Simulator(star, lookup).run(dfg, get_policy(policy_name))
        assert list(flat_run.schedule) == list(star_run.schedule)
        assert flat_run.metrics == star_run.metrics

    @pytest.mark.parametrize("policy_name", ["apt", "met", "heft", "ag"])
    def test_star_fast_vs_reference(self, policy_name, system, lookup):
        dfg = paper_suite(2)[1]
        assert_identical_runs(
            {"system": star_twin(system), "lookup": lookup}, dfg, policy_name
        )

    def test_figure5_end_times_on_star_topology(self):
        # The one fully-published experiment: the star-topology platform
        # must land on the paper's exact end times too.
        star = star_twin(CPU_GPU_FPGA())
        sim = Simulator(star, figure5_lookup_table(), transfers_enabled=False)
        dfg = DFG.from_kernels(FIGURE5_KERNELS, name="figure5")
        assert sim.run(dfg, MET()).makespan == pytest.approx(318.093, abs=1e-3)
        assert sim.run(dfg, APT(alpha=8.0)).makespan == pytest.approx(212.093, abs=1e-3)


class TestContendedVsUncontended:
    """The contended event path vs the fixed-charge path.

    When no two flows ever overlap on a shared channel, the contended
    path must charge *exactly* the uncontended route times; when flows do
    overlap, the shared channel's equal-share discipline stretches them
    by the precise flow count.
    """

    def _bus_system(self, contention: bool) -> SystemConfig:
        flat = CPU_GPU_FPGA(transfer_rate_gbps=4.0)
        procs = [Processor(p.name, p.ptype) for p in flat]
        return SystemConfig(
            procs,
            topology=bus_topology(
                [p.name for p in procs], bus_gbps=4.0, contention=contention
            ),
        )

    def test_serial_transfers_identical_bit_for_bit(self, lookup):
        # A pipeline chain never has two transfers in flight at once, so
        # contention must change nothing — including every float.
        from repro.graphs.generators import make_pipeline_dfg
        import numpy as np

        dfg = make_pipeline_dfg(
            30, rng=np.random.default_rng(5), stage_width=1, name="chain"
        )
        for policy_name in ("met", "apt", "heft"):
            on = Simulator(self._bus_system(True), lookup).run(
                dfg, get_policy(policy_name)
            )
            off = Simulator(self._bus_system(False), lookup).run(
                dfg, get_policy(policy_name)
            )
            key = lambda e: e.kernel_id  # noqa: E731 - contended entries log at exec start
            assert sorted(on.schedule, key=key) == sorted(off.schedule, key=key)
            assert on.metrics == off.metrics

    def test_join_kernel_flows_share_the_bus_exactly(self, lookup):
        # Two predecessors pinned to different processors feed one join
        # kernel on a third: its two inbound flows drain concurrently on
        # the shared bus, so each gets half the bandwidth — exactly 2x
        # the uncontended (max) transfer time; upstream is untouched.
        from repro.graphs.dfg import KernelSpec
        from repro.policies.base import Assignment, DynamicPolicy

        dfg = DFG("join")
        a = dfg.add_kernel(KernelSpec("matmul", 250_000))
        b = dfg.add_kernel(KernelSpec("bfs", 250_000))
        c = dfg.add_kernel(KernelSpec("srad", 250_000))
        dfg.add_dependencies([(a, c), (b, c)])
        pin = {a: "gpu0", b: "fpga0", c: "cpu0"}

        class Pinned(DynamicPolicy):
            name = "pinned"

            def select(self, ctx):
                return [
                    Assignment(kernel_id=k, processor=pin[k])
                    for k in ctx.ready
                    if ctx.views[pin[k]].idle
                ]

        on = Simulator(self._bus_system(True), lookup).run(dfg, Pinned())
        off = Simulator(self._bus_system(False), lookup).run(dfg, Pinned())
        entry_on = {e.kernel_id: e for e in on.schedule}
        entry_off = {e.kernel_id: e for e in off.schedule}
        # uncontended: max(two 1e6-byte transfers at 4 GB/s) = 0.25 ms
        assert entry_off[c].transfer_time == pytest.approx(0.25)
        assert entry_on[c].transfer_time == pytest.approx(
            2.0 * entry_off[c].transfer_time
        )
        for kid in (a, b):
            assert entry_on[kid] == entry_off[kid]


class TestStreamingArrivals:
    @pytest.mark.parametrize("policy_name", ALL_POLICIES)
    def test_streaming_equivalence(self, policy_name, lookup):
        dfg, arrivals = streaming_scale_workload(
            n_kernels=250, seed=11, mean_interarrival_ms=2000.0
        )
        assert_identical_runs(
            {"system": scale_system(n_cpu=2, n_gpu=2, n_fpga=2), "lookup": lookup},
            dfg,
            policy_name,
            arrivals=arrivals,
        )

    @pytest.mark.parametrize("policy_name", ["apt", "apt_rt", "met", "ag", "heft"])
    def test_streaming_with_noise_equivalence(self, policy_name, lookup):
        dfg, arrivals = streaming_scale_workload(
            n_kernels=200, seed=3, mean_interarrival_ms=1500.0
        )
        assert_identical_runs(
            {
                "system": scale_system(n_cpu=2, n_gpu=2, n_fpga=2),
                "lookup": lookup,
                "exec_noise_sigma": 0.3,
                "noise_seed": 42,
            },
            dfg,
            policy_name,
            arrivals=arrivals,
        )


class TestEventDrivenArrivalPath:
    """``Simulator.run_stream`` (event-driven admission + retirement) must
    reproduce the merged-DFG path bit for bit: every ScheduleEntry field
    of every kernel, for every policy, on the paper suites, the streaming
    extension, and the published Figure 5 anchors."""

    def assert_stream_equivalent(self, sim_kwargs, stream, policy_name, name="stream"):
        from repro.graphs.sources import EagerSource

        system = sim_kwargs.pop("system")
        lookup = sim_kwargs.pop("lookup")
        sim = Simulator(system, lookup, **sim_kwargs)
        merged, arrivals = stream.merged(name=name)
        ref = sim.run(merged, get_policy(policy_name), arrivals=arrivals)
        out = sim.run_stream(EagerSource(stream, name=name), get_policy(policy_name))
        assert list(out.schedule) == list(ref.schedule), (
            f"stream/merged divergence: {policy_name} on {name}"
        )
        assert out.metrics == ref.metrics
        assert out.policy_stats == ref.policy_stats
        # and the array backend's streaming path must match both
        arr = Simulator(system, lookup, backend="array", **sim_kwargs).run_stream(
            EagerSource(stream, name=name), get_policy(policy_name)
        )
        assert list(arr.schedule) == list(ref.schedule), (
            f"array stream divergence: {policy_name} on {name}"
        )
        assert arr.metrics == out.metrics
        assert arr.policy_stats == out.policy_stats
        assert arr.service == out.service

    @pytest.mark.parametrize("policy_name", ALL_POLICIES)
    @pytest.mark.parametrize("dfg_type", [1, 2])
    def test_paper_suites_as_single_application_streams(
        self, policy_name, dfg_type, system, lookup
    ):
        from repro.graphs.streams import ApplicationArrival, ApplicationStream

        for dfg in paper_suite(dfg_type)[:4]:
            stream = ApplicationStream([ApplicationArrival(dfg, 0.0)])
            self.assert_stream_equivalent(
                {"system": system, "lookup": lookup}, stream, policy_name, name=dfg.name
            )

    @pytest.mark.parametrize("policy_name", ALL_POLICIES)
    def test_streaming_extension_equivalence(self, policy_name, lookup):
        from repro.experiments.workloads import streaming_scale_stream

        stream = streaming_scale_stream(
            n_kernels=250, seed=11, mean_interarrival_ms=2000.0
        )
        self.assert_stream_equivalent(
            {"system": scale_system(n_cpu=2, n_gpu=2, n_fpga=2), "lookup": lookup},
            stream,
            policy_name,
        )

    @pytest.mark.parametrize("policy_name", ["apt", "apt_rt", "met", "ag", "heft"])
    def test_streaming_with_noise_equivalence(self, policy_name, lookup):
        from repro.experiments.workloads import streaming_scale_stream

        stream = streaming_scale_stream(
            n_kernels=200, seed=3, mean_interarrival_ms=1500.0
        )
        self.assert_stream_equivalent(
            {
                "system": scale_system(n_cpu=2, n_gpu=2, n_fpga=2),
                "lookup": lookup,
                "exec_noise_sigma": 0.3,
                "noise_seed": 42,
            },
            stream,
            policy_name,
        )

    @pytest.mark.parametrize("policy_name", ["apt", "met", "ag"])
    def test_contended_bus_stream_equivalence(self, policy_name, lookup):
        from repro.experiments.workloads import streaming_scale_stream
        from repro.graphs.sources import EagerSource

        flat = CPU_GPU_FPGA(transfer_rate_gbps=4.0)
        procs = [Processor(p.name, p.ptype) for p in flat]
        system = SystemConfig(
            procs,
            topology=bus_topology(
                [p.name for p in procs], bus_gbps=4.0, contention=True
            ),
        )
        stream = streaming_scale_stream(
            n_kernels=150, seed=5, mean_interarrival_ms=2000.0
        )
        sim = Simulator(system, lookup)
        merged, arrivals = stream.merged(name="stream")
        ref = sim.run(merged, get_policy(policy_name), arrivals=arrivals)
        out = sim.run_stream(EagerSource(stream, name="stream"), get_policy(policy_name))
        assert list(out.schedule) == list(ref.schedule)
        assert out.metrics == ref.metrics

    def test_figure5_end_times_through_run_stream(self):
        # The one fully-published experiment must land on the paper's
        # exact end times through the event-driven arrival pipeline too.
        from repro.graphs.streams import ApplicationArrival, ApplicationStream

        sim = Simulator(
            CPU_GPU_FPGA(), figure5_lookup_table(), transfers_enabled=False
        )
        dfg = DFG.from_kernels(FIGURE5_KERNELS, name="figure5")
        stream = ApplicationStream([ApplicationArrival(dfg, 0.0)])
        met = sim.run_stream(stream, MET())
        apt = sim.run_stream(stream, APT(alpha=8.0))
        assert met.makespan == pytest.approx(318.093, abs=1e-3)
        assert apt.makespan == pytest.approx(212.093, abs=1e-3)


class TestLayeredEngineSeams:
    """The engine/dynamics split must be invisible: inserting an extra
    no-op ``RuntimeDynamics`` layer (every hook overridden, nothing
    mutated) leaves schedules bit-for-bit identical on closed, streamed,
    contended and Figure-5 runs alike — proof that the seams observe the
    run without perturbing it."""

    @staticmethod
    def noop_layer():
        from repro.core.engine import RuntimeDynamics

        class NoopObserver(RuntimeDynamics):
            name = "noop_observer"

            def on_run_start(self):
                self.seen = 0

            def on_kernel_start(self, kid, proc):
                self.seen += 1

            def on_kernel_finish(self, kid, proc):
                self.seen += 1

            def on_entry(self, entry):
                self.seen += 1

            def observe(self, ctx):
                self.seen += 1

        return NoopObserver()

    @pytest.mark.parametrize("policy_name", ["apt", "apt_rt", "met", "ag", "heft", "peft"])
    @pytest.mark.parametrize("dfg_type", [1, 2])
    def test_noop_layer_invisible_on_paper_suites(
        self, policy_name, dfg_type, system, lookup
    ):
        dfg = paper_suite(dfg_type)[2]
        base = Simulator(system, lookup).run(dfg, get_policy(policy_name))
        layer = self.noop_layer()
        layered = Simulator(system, lookup, dynamics=[layer]).run(
            dfg, get_policy(policy_name)
        )
        assert list(layered.schedule) == list(base.schedule)
        assert layered.metrics == base.metrics
        assert layer.seen > 0

    @pytest.mark.parametrize("policy_name", ["apt", "met", "ag"])
    def test_noop_layer_invisible_on_contended_stream(self, policy_name, lookup):
        from repro.experiments.workloads import streaming_scale_stream
        from repro.graphs.sources import EagerSource

        flat = CPU_GPU_FPGA(transfer_rate_gbps=4.0)
        procs = [Processor(p.name, p.ptype) for p in flat]
        system = SystemConfig(
            procs,
            topology=bus_topology(
                [p.name for p in procs], bus_gbps=4.0, contention=True
            ),
        )
        stream = streaming_scale_stream(
            n_kernels=120, seed=5, mean_interarrival_ms=2000.0
        )
        base = Simulator(system, lookup).run_stream(
            EagerSource(stream, name="s"), get_policy(policy_name)
        )
        layered = Simulator(system, lookup, dynamics=[self.noop_layer()]).run_stream(
            EagerSource(stream, name="s"), get_policy(policy_name)
        )
        assert list(layered.schedule) == list(base.schedule)
        assert layered.metrics == base.metrics
        assert layered.service == base.service

    def test_noop_layer_preserves_figure5_anchors(self):
        sim = Simulator(
            star_twin(CPU_GPU_FPGA()),
            figure5_lookup_table(),
            transfers_enabled=False,
            dynamics=[self.noop_layer()],
        )
        dfg = DFG.from_kernels(FIGURE5_KERNELS, name="figure5")
        assert sim.run(dfg, MET()).makespan == pytest.approx(318.093, abs=1e-3)
        assert sim.run(dfg, APT(alpha=8.0)).makespan == pytest.approx(
            212.093, abs=1e-3
        )

    @pytest.mark.parametrize("policy_name", ["apt", "met"])
    def test_noop_layer_invisible_under_noise(self, policy_name, system, lookup):
        dfg = paper_suite(1)[1]
        kwargs = dict(exec_noise_sigma=0.25, noise_seed=7)
        base = Simulator(system, lookup, **kwargs).run(dfg, get_policy(policy_name))
        layered = Simulator(
            system, lookup, dynamics=[self.noop_layer()], **kwargs
        ).run(dfg, get_policy(policy_name))
        assert list(layered.schedule) == list(base.schedule)
        assert layered.metrics == base.metrics


class TestArrayBackendAnchors:
    """Direct array-backend anchors beyond the shared assertion helpers:
    the published Figure 5 end times and the contended-topology event
    path must hold on the struct-of-arrays engine too."""

    @pytest.mark.parametrize("jit", [None, "off", "on"])
    def test_figure5_end_times_on_array_backend(self, jit):
        # the published anchors must hold on every jit resolution — the
        # "on" leg runs the compiled twins where numba exists and the
        # bit-identical fallback elsewhere.
        sim = Simulator(
            CPU_GPU_FPGA(),
            figure5_lookup_table(),
            transfers_enabled=False,
            backend="array",
            jit=jit,
        )
        dfg = DFG.from_kernels(FIGURE5_KERNELS, name="figure5")
        assert sim.run(dfg, MET()).makespan == pytest.approx(318.093, abs=1e-3)
        assert sim.run(dfg, APT(alpha=8.0)).makespan == pytest.approx(
            212.093, abs=1e-3
        )

    @pytest.mark.parametrize("policy_name", ["apt", "met", "heft"])
    def test_contended_bus_identical_across_backends(self, policy_name, lookup):
        from repro.core.topology import bus_topology

        flat = CPU_GPU_FPGA(transfer_rate_gbps=4.0)
        procs = [Processor(p.name, p.ptype) for p in flat]
        system = SystemConfig(
            procs,
            topology=bus_topology(
                [p.name for p in procs], bus_gbps=4.0, contention=True
            ),
        )
        dfg = paper_suite(2)[2]
        obj = Simulator(system, lookup, backend="object").run(
            dfg, get_policy(policy_name)
        )
        arr = Simulator(system, lookup, backend="array").run(
            dfg, get_policy(policy_name)
        )
        assert list(arr.schedule) == list(obj.schedule)
        assert arr.metrics == obj.metrics
        assert arr.policy_stats == obj.policy_stats
