"""Tests for the open-system streaming path (``Simulator.run_stream``).

Bit-for-bit equivalence against the merged-DFG path is asserted in
``tests/test_simulator_equivalence.py``; this module covers the
streaming path's own contracts: bounded-memory retirement, eager-vs-lazy
source equality, the accumulator (no-schedule) mode, service-level
metrics, and the static-policy clairvoyant fallback.
"""

from __future__ import annotations

import pytest

from repro.core.metrics import AppSpan, compute_service_metrics
from repro.core.simulator import Simulator
from repro.data.paper_tables import paper_lookup_table
from repro.experiments.workloads import (
    mixed_application_factory,
    open_system_source,
    scale_system,
    streaming_scale_source,
    streaming_scale_stream,
)
from repro.graphs.sources import EagerSource, GeneratorSource, PoissonProfile
from repro.graphs.streams import ApplicationArrival, ApplicationStream
from repro.policies.heft import HEFT
from repro.policies.registry import get_policy
from tests.test_simulator import dfg_of


@pytest.fixture(scope="module")
def lookup():
    return paper_lookup_table()


def two_app_stream(t2: float = 40.0) -> ApplicationStream:
    return ApplicationStream(
        [
            ApplicationArrival(dfg_of("fast_cpu", "fast_gpu", deps=[(0, 1)]), 0.0),
            ApplicationArrival(dfg_of("fast_gpu", "fast_cpu", deps=[(0, 1)]), t2),
        ]
    )


class TestRunStreamBasics:
    def test_accepts_stream_and_source(self, synth_sim):
        stream = two_app_stream()
        a = synth_sim.run_stream(stream, get_policy("met"))
        b = synth_sim.run_stream(EagerSource(stream, name="stream"), get_policy("met"))
        assert list(a.schedule) == list(b.schedule)
        assert a.stream.n_applications == 2
        assert a.stream.n_kernels == 4

    def test_rejects_non_policy(self, synth_sim):
        with pytest.raises(TypeError):
            synth_sim.run_stream(two_app_stream(), object())

    def test_simultaneous_arrivals_share_a_batch(self, synth_sim):
        # two applications with identical arrival floats must be admitted
        # together, exactly like their merged-path KERNEL_READY events
        stream = ApplicationStream(
            [
                ApplicationArrival(dfg_of("fast_cpu"), 0.0),
                ApplicationArrival(dfg_of("fast_cpu"), 25.0),
                ApplicationArrival(dfg_of("fast_gpu"), 25.0),
            ]
        )
        merged, arrivals = stream.merged(name="stream")
        ref = synth_sim.run(merged, get_policy("met"), arrivals=arrivals)
        out = synth_sim.run_stream(stream, get_policy("met"))
        assert list(out.schedule) == list(ref.schedule)

    def test_all_kernels_retired_at_end(self, synth_sim):
        out = synth_sim.run_stream(two_app_stream(), get_policy("apt"))
        assert out.stream.retired_kernels == out.stream.n_kernels
        assert 0 < out.stream.peak_resident_kernels <= out.stream.n_kernels


class TestRetainScheduleOff:
    def test_metrics_and_service_identical_without_schedule(self, lookup):
        src = open_system_source(
            n_applications=12, seed=7, profile="poisson", mean_interarrival_ms=2000.0
        )
        sim = Simulator(scale_system(n_cpu=2, n_gpu=2, n_fpga=2), lookup)
        kept = sim.run_stream(src, get_policy("apt"))
        dropped = sim.run_stream(src, get_policy("apt"), retain_schedule=False)
        assert dropped.schedule is None
        assert dropped.metrics == kept.metrics
        assert dropped.service == kept.service
        assert dropped.stream == kept.stream


class TestStaticPolicyClairvoyantFallback:
    def test_static_policy_matches_merged_run(self, synth_sim):
        stream = two_app_stream()
        merged, arrivals = stream.merged(name="stream")
        ref = synth_sim.run(merged, HEFT(), arrivals=arrivals)
        out = synth_sim.run_stream(EagerSource(stream, name="stream"), HEFT())
        assert list(out.schedule) == list(ref.schedule)
        # clairvoyant: the whole stream is resident, nothing is retired
        assert out.stream.peak_resident_kernels == out.stream.n_kernels
        assert out.stream.retired_kernels == 0
        assert out.service.n_applications == 2


class TestServiceMetrics:
    def test_response_and_queueing_anchored_at_arrival(self, synth_sim):
        out = synth_sim.run_stream(two_app_stream(t2=1000.0), get_policy("met"))
        rec = out.service.records[1]
        assert rec.arrival_ms == 1000.0
        # sparse stream: the second app starts at its arrival instant
        assert rec.queueing_ms == pytest.approx(0.0)
        assert rec.response_ms == pytest.approx(rec.finish_ms - 1000.0)
        assert rec.slowdown >= 1.0 - 1e-9

    def test_batch_equals_accumulated(self, lookup):
        src = open_system_source(
            n_applications=10, seed=3, profile="burst",
            burst_size=3, within_burst_ms=50.0, between_bursts_ms=5000.0,
        )
        sim = Simulator(scale_system(n_cpu=2, n_gpu=2, n_fpga=2), lookup)
        out = sim.run_stream(src, get_policy("apt"))
        stream = src.materialize()
        spans = []
        offset = 0
        for app in stream:
            spans.append(AppSpan(app.arrival_ms, offset, offset + len(app.dfg)))
            offset += len(app.dfg)
        merged, _ = stream.merged(name=src.name)
        batch = compute_service_metrics(out.schedule, spans, dfg=merged, cost=sim.cost)
        assert batch == out.service

    def test_rolling_windows_cover_horizon(self, lookup):
        src = open_system_source(
            n_applications=8, seed=1, profile="poisson", mean_interarrival_ms=1000.0
        )
        sim = Simulator(scale_system(n_cpu=2, n_gpu=2, n_fpga=2), lookup)
        out = sim.run_stream(src, get_policy("met"))
        windows = out.service.rolling(window_ms=10_000.0)
        assert windows[-1].t_hi_ms >= out.service.horizon_ms
        assert sum(w.arrived for w in windows) == 8
        assert sum(w.completed for w in windows) == 8


class TestBoundedMemory:
    def test_50k_kernel_stream_is_memory_bounded(self, lookup):
        """The acceptance scenario: a ≥50k-kernel lazily-generated stream
        completes with peak resident kernels a small multiple of the
        in-flight concurrency — two orders of magnitude below the stream
        length — and every kernel retired."""
        source = GeneratorSource(
            4200,
            mixed_application_factory(),
            PoissonProfile(3000.0),
            seed=2017,
            name="bounded_50k",
        )
        sim = Simulator(scale_system(), lookup)
        out = sim.run_stream(source, get_policy("met"), retain_schedule=False)
        stats = out.stream
        assert stats.n_kernels >= 50_000
        assert stats.retired_kernels == stats.n_kernels
        # ~12-kernel applications on a 12-processor system at 1/3s: the
        # resident window is a few dozen applications, not thousands.
        assert stats.peak_resident_kernels <= stats.n_kernels // 50
        assert out.service.n_applications == 4200

    def test_peak_tracks_concurrency_not_length(self, lookup):
        # doubling the stream length must not move the peak once the
        # system reaches steady state (same arrival rate, same pool)
        sim = Simulator(scale_system(), lookup)
        peaks = []
        for n_apps in (150, 300):
            src = GeneratorSource(
                n_apps, mixed_application_factory(), PoissonProfile(3000.0), seed=11
            )
            out = sim.run_stream(src, get_policy("met"), retain_schedule=False)
            peaks.append(out.stream.peak_resident_kernels)
        assert peaks[1] <= peaks[0] * 1.5

    def test_200k_stream_recycles_kernel_table_rows(self, lookup):
        """Array-backend bounded memory: a 200k-kernel retired stream
        must reuse kernel-table rows via the free list — the table's
        high-water mark stays at the resident window (hundreds of
        rows), not the stream length."""
        source = streaming_scale_source(200_000, seed=7)
        sim = Simulator(scale_system(), lookup, backend="array")
        out = sim.run_stream(source, get_policy("met"), retain_schedule=False)
        stats = out.stream
        assert stats.n_kernels >= 200_000
        assert stats.retired_kernels == stats.n_kernels
        prof = sim.last_profile
        assert prof is not None
        # every completed kernel's row went back to the free list...
        assert prof["rows_released"] == prof["n_completed"] == stats.n_kernels
        assert prof["rows_in_use"] == 0
        # ...and the table's high-water mark tracks the resident window
        # (hundreds of rows), two-plus orders below the stream length
        assert prof["kernel_table_rows"] <= stats.peak_resident_kernels
        assert stats.peak_resident_kernels <= stats.n_kernels // 50


class TestScaleStreamSource:
    def test_lazy_source_matches_eager_stream(self):
        """streaming_scale_source replays streaming_scale_stream's RNG
        consumption exactly — eager and lazy forms are bit-identical."""
        eager = streaming_scale_stream(3000, seed=5, mean_interarrival_ms=400.0)
        source = streaming_scale_source(3000, seed=5, mean_interarrival_ms=400.0)
        lazy = source.materialize()
        assert len(lazy) == len(eager) == len(source)
        assert source.total_kernels == eager.n_kernels
        for a, b in zip(eager, lazy):
            assert a.arrival_ms == b.arrival_ms
            assert a.dfg.name == b.dfg.name
            specs_a = [a.dfg.spec(k) for k in a.dfg.kernel_ids()]
            specs_b = [b.dfg.spec(k) for k in b.dfg.kernel_ids()]
            assert [
                (s.kernel, s.data_size) for s in specs_a
            ] == [(s.kernel, s.data_size) for s in specs_b]
            assert a.dfg.edges() == b.dfg.edges()

    def test_source_validates_parameters(self):
        with pytest.raises(ValueError):
            streaming_scale_source(4)
        with pytest.raises(ValueError):
            streaming_scale_source(100, mean_interarrival_ms=0.0)

    def test_registry_names_resolve(self):
        from repro.experiments.workloads import (
            STREAM_SCENARIOS,
            stream_scenario_source,
        )

        for name in STREAM_SCENARIOS:
            src = stream_scenario_source(name)
            assert src.total_kernels >= STREAM_SCENARIOS[name]["n_kernels"]
        with pytest.raises(ValueError, match="unknown stream scenario"):
            stream_scenario_source("nope")


class TestStreamEdgeCases:
    def test_single_kernel_app(self, synth_sim):
        stream = ApplicationStream([ApplicationArrival(dfg_of("fast_cpu"), 0.0)])
        out = synth_sim.run_stream(stream, get_policy("met"))
        assert out.stream.n_kernels == 1
        assert out.service.records[0].n_kernels == 1

    def test_arrival_after_long_idle(self, synth_sim):
        out = synth_sim.run_stream(two_app_stream(t2=10_000.0), get_policy("met"))
        assert out.metrics.makespan >= 10_000.0
        assert out.service.records[1].queueing_ms == pytest.approx(0.0)

    def test_source_name_reported(self, synth_sim):
        src = EagerSource(two_app_stream(), name="my_stream")
        out = synth_sim.run_stream(src, get_policy("met"))
        assert out.source_name == "my_stream"


class TestContextExposesOnlyArrivedWork:
    def test_policy_sees_only_admitted_kernels(self, synth_sim):
        """The streaming context's graph facade holds arrived, unretired
        kernels only — a dynamic policy cannot observe the future."""
        seen: list[int] = []
        from repro.policies.base import Assignment, DynamicPolicy

        class Spy(DynamicPolicy):
            name = "spy"

            def select(self, ctx):
                seen.append(len(ctx.dfg))
                return [
                    Assignment(kernel_id=k, processor=ctx.idle_processors()[0].name)
                    for k in ctx.ready[:1]
                    if ctx.idle_processors()
                ]

        synth_sim.run_stream(two_app_stream(t2=500.0), Spy())
        # before the second app arrives, at most the first app (2 kernels,
        # possibly partly retired) is visible
        assert seen[0] <= 2
        assert max(seen) <= 4
