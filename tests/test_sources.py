"""Tests for arrival sources and rate profiles (repro.graphs.sources)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.dfg import DFG, KernelSpec
from repro.graphs.sources import (
    ArrivalSource,
    BurstProfile,
    DiurnalProfile,
    EagerSource,
    GeneratorSource,
    PoissonProfile,
    profile_from_dict,
)
from repro.graphs.streams import (
    ApplicationArrival,
    ApplicationStream,
    poisson_stream,
)


def tiny_app(name: str = "app") -> DFG:
    dfg = DFG(name)
    a = dfg.add_kernel(KernelSpec("fast_cpu", 1_000_000))
    b = dfg.add_kernel(KernelSpec("fast_gpu", 1_000_000))
    dfg.add_dependency(a, b)
    return dfg


def tiny_factory(i: int, rng: np.random.Generator) -> DFG:
    return tiny_app(f"app{i}")


class TestProfiles:
    def test_poisson_gap_is_exponential_draw(self):
        p = PoissonProfile(100.0)
        a = p.gap_ms(0, 0.0, np.random.default_rng(7))
        b = float(np.random.default_rng(7).exponential(100.0))
        assert a == b

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            PoissonProfile(0.0)

    def test_burst_pattern(self):
        p = BurstProfile(burst_size=3, within_burst_ms=10.0, between_bursts_ms=500.0)
        rng = np.random.default_rng(0)
        gaps = [p.gap_ms(i, 0.0, rng) for i in range(6)]
        assert gaps == [10.0, 10.0, 500.0, 10.0, 10.0, 500.0]

    def test_burst_validation(self):
        with pytest.raises(ValueError):
            BurstProfile(0, 1.0, 1.0)
        with pytest.raises(ValueError):
            BurstProfile(2, -1.0, 1.0)

    def test_diurnal_rate_modulation(self):
        # at the sine peak the mean gap shrinks, at the trough it grows
        p = DiurnalProfile(base_mean_ms=100.0, amplitude=0.5, period_ms=1000.0)
        rng_hi = np.random.default_rng(1)
        rng_lo = np.random.default_rng(1)
        peak = p.gap_ms(0, 250.0, rng_hi)   # sin = +1 → rate 1.5x
        trough = p.gap_ms(0, 750.0, rng_lo)  # sin = -1 → rate 0.5x
        assert peak < trough

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            DiurnalProfile(0.0, 0.5, 100.0)
        with pytest.raises(ValueError):
            DiurnalProfile(10.0, 1.0, 100.0)
        with pytest.raises(ValueError):
            DiurnalProfile(10.0, 0.5, 0.0)

    @pytest.mark.parametrize(
        "profile",
        [
            PoissonProfile(250.0),
            BurstProfile(4, 20.0, 800.0),
            DiurnalProfile(300.0, 0.7, 10_000.0),
        ],
    )
    def test_dict_round_trip(self, profile):
        assert profile_from_dict(profile.to_dict()) == profile

    def test_unknown_profile_kind_rejected(self):
        with pytest.raises(ValueError):
            profile_from_dict({"kind": "bogus"})


class TestEagerSource:
    def test_wraps_stream(self):
        stream = ApplicationStream(
            [ApplicationArrival(tiny_app(), 0.0), ApplicationArrival(tiny_app(), 9.0)]
        )
        src = EagerSource(stream, name="s")
        assert len(src) == 2
        assert [a.arrival_ms for a in src] == [0.0, 9.0]
        assert src.materialize() is stream


class TestGeneratorSource:
    def test_matches_poisson_stream_bit_for_bit(self):
        # the determinism contract: lazy generation consumes the RNG in
        # the same order as the eager poisson_stream helper
        lazy = GeneratorSource(12, tiny_factory, PoissonProfile(77.0), seed=5)
        eager = poisson_stream(12, 77.0, tiny_factory, np.random.default_rng(5))
        lazy_arrivals = list(lazy)
        assert [a.arrival_ms for a in lazy_arrivals] == [
            a.arrival_ms for a in eager
        ]
        for a, b in zip(lazy_arrivals, eager):
            assert a.dfg.edges() == b.dfg.edges()
            assert [a.dfg.spec(k) for k in a.dfg] == [b.dfg.spec(k) for k in b.dfg]

    def test_lazy_construction(self):
        built = []

        def factory(i, rng):
            built.append(i)
            return tiny_app(f"app{i}")

        src = GeneratorSource(5, factory, PoissonProfile(10.0), seed=1)
        it = src.arrivals()
        assert built == []
        next(it)
        assert built == [0]
        next(it)
        assert built == [0, 1]

    def test_restartable(self):
        src = GeneratorSource(4, tiny_factory, PoissonProfile(50.0), seed=2)
        assert [a.arrival_ms for a in src] == [a.arrival_ms for a in src]

    def test_validation(self):
        with pytest.raises(ValueError):
            GeneratorSource(0, tiny_factory, PoissonProfile(10.0), seed=0)
        with pytest.raises(ValueError):
            GeneratorSource(2, tiny_factory, PoissonProfile(10.0), seed=0, start_ms=-1)

    def test_out_of_order_source_rejected(self):
        class Backwards(ArrivalSource):
            name = "backwards"

            def _generate(self):
                yield ApplicationArrival(tiny_app(), 10.0)
                yield ApplicationArrival(tiny_app(), 5.0)

        with pytest.raises(ValueError, match="out of order"):
            list(Backwards().arrivals())


class TestPoissonCrossProcessStability:
    def test_arrival_times_stable_across_processes(self):
        """A fixed-seed poisson_stream is bit-for-bit identical in a fresh
        interpreter — the property the sweep cache's cross-process
        determinism rests on."""
        import json
        import subprocess
        import sys
        from pathlib import Path

        script = (
            "import json, sys\n"
            "import numpy as np\n"
            "from repro.graphs.streams import poisson_stream\n"
            "from repro.graphs.dfg import DFG, KernelSpec\n"
            "def factory(i, rng):\n"
            "    dfg = DFG(f'app{i}')\n"
            "    n = int(rng.integers(1, 4))\n"
            "    for _ in range(n):\n"
            "        dfg.add_kernel(KernelSpec('fast_cpu', int(rng.integers(1, 10**6))))\n"
            "    return dfg\n"
            "s = poisson_stream(20, 123.0, factory, np.random.default_rng(42))\n"
            "print(json.dumps([[a.arrival_ms, len(a.dfg),\n"
            "    [a.dfg.spec(k).data_size for k in a.dfg]] for a in s]))\n"
        )
        src_dir = Path(__file__).parent.parent / "src"
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(src_dir), "PATH": "/usr/bin:/bin"},
            check=True,
        )
        child = json.loads(out.stdout)

        def factory(i, rng):
            dfg = DFG(f"app{i}")
            n = int(rng.integers(1, 4))
            for _ in range(n):
                dfg.add_kernel(KernelSpec("fast_cpu", int(rng.integers(1, 10**6))))
            return dfg

        here = poisson_stream(20, 123.0, factory, np.random.default_rng(42))
        ours = [
            [a.arrival_ms, len(a.dfg), [a.dfg.spec(k).data_size for k in a.dfg]]
            for a in here
        ]
        assert child == ours  # bitwise float equality via JSON repr
