"""Unit tests for improvement statistics (paper eqs. (13)-(14))."""

import pytest

from repro.analysis.stats import (
    improvement_percent,
    improvement_vs_second_best,
    occurrences_of_better_solutions,
    summarize_values,
)


class TestImprovementPercent:
    def test_positive_improvement(self):
        assert improvement_percent(100.0, 84.0) == pytest.approx(16.0)

    def test_negative_when_candidate_loses(self):
        assert improvement_percent(100.0, 103.0) == pytest.approx(-3.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            improvement_percent(0.0, 10.0)


class TestImprovementVsSecondBest:
    def test_finds_best_other_policy(self):
        values = {
            "apt": [80.0, 90.0],
            "met": [100.0, 100.0],
            "spn": [300.0, 500.0],
        }
        impr, second = improvement_vs_second_best(values, "apt")
        assert second == "met"
        assert impr == pytest.approx(15.0)

    def test_missing_candidate_rejected(self):
        with pytest.raises(KeyError):
            improvement_vs_second_best({"met": [1.0]}, "apt")

    def test_requires_other_policies(self):
        with pytest.raises(ValueError):
            improvement_vs_second_best({"apt": [1.0]}, "apt")

    def test_negative_when_second_best_wins(self):
        values = {"apt": [110.0], "met": [100.0]}
        impr, _ = improvement_vs_second_best(values, "apt")
        assert impr == pytest.approx(-10.0)


class TestOccurrences:
    def test_counts_strict_wins(self):
        values = {
            "apt": [1.0, 5.0, 2.0],
            "met": [2.0, 5.0, 3.0],
            "spn": [9.0, 9.0, 1.0],
        }
        # graph 0: apt < all; graph 1: tie with met; graph 2: spn wins
        assert occurrences_of_better_solutions(values, "apt") == 1

    def test_all_wins(self):
        values = {"apt": [1.0, 1.0], "met": [2.0, 2.0]}
        assert occurrences_of_better_solutions(values, "apt") == 2


class TestSummarize:
    def test_moments(self):
        s = summarize_values([2.0, 4.0, 6.0])
        assert s["mean"] == pytest.approx(4.0)
        assert s["min"] == 2.0 and s["max"] == 6.0
        assert s["n"] == 3

    def test_empty(self):
        assert summarize_values([])["n"] == 0
