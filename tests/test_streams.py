"""Tests for streaming arrivals (online workloads)."""

import numpy as np
import pytest

from repro.graphs.dfg import DFG
from repro.graphs.streams import (
    ApplicationArrival,
    ApplicationStream,
    periodic_stream,
    poisson_stream,
)
from repro.policies.apt import APT
from repro.policies.met import MET
from repro.policies.olb import OLB
from tests.test_simulator import dfg_of


def two_kernel_app(kernel="fast_cpu") -> DFG:
    return dfg_of(kernel, kernel, deps=[(0, 1)])


class TestSimulatorArrivals:
    def test_kernel_not_started_before_arrival(self, synth_sim):
        dfg = dfg_of("fast_cpu")
        result = synth_sim.run(dfg, MET(), arrivals={0: 25.0})
        e = result.schedule[0]
        assert e.arrival_time == 25.0
        assert e.exec_start == pytest.approx(25.0)
        assert e.lambda_delay == pytest.approx(0.0)

    def test_ready_is_max_of_arrival_and_dependencies(self, synth_sim):
        # kernel 1 depends on kernel 0 (finishes at 10) but arrives at 50.
        dfg = dfg_of("fast_cpu", "fast_cpu", deps=[(0, 1)])
        result = synth_sim.run(dfg, MET(), arrivals={1: 50.0})
        assert result.schedule[1].ready_time == pytest.approx(50.0)
        assert result.schedule[1].exec_start == pytest.approx(50.0)

    def test_dependency_later_than_arrival(self, synth_sim):
        dfg = dfg_of("fast_cpu", "fast_cpu", deps=[(0, 1)])
        result = synth_sim.run(dfg, MET(), arrivals={1: 3.0})
        # deps finish at 10 > arrival 3
        assert result.schedule[1].ready_time == pytest.approx(10.0)
        assert result.schedule[1].lambda_delay == pytest.approx(7.0)

    def test_late_arrival_keeps_processors_busy_with_other_work(self, synth_sim):
        dfg = dfg_of("fast_cpu", "fast_gpu")
        result = synth_sim.run(dfg, MET(), arrivals={1: 2.0})
        assert result.schedule[0].exec_start == 0.0
        assert result.schedule[1].exec_start == pytest.approx(2.0)

    def test_unknown_kernel_arrival_rejected(self, synth_sim):
        with pytest.raises(KeyError):
            synth_sim.run(dfg_of("fast_cpu"), MET(), arrivals={9: 1.0})

    def test_negative_arrival_rejected(self, synth_sim):
        with pytest.raises(ValueError):
            synth_sim.run(dfg_of("fast_cpu"), MET(), arrivals={0: -1.0})

    def test_lambda_anchored_at_arrival(self, synth_sim):
        # Two fast_gpu kernels, second arrives at 5: it waits for the GPU
        # until 10, so λ = 10 − 5 = 5.
        dfg = dfg_of("fast_gpu", "fast_gpu")
        result = synth_sim.run(dfg, MET(), arrivals={1: 5.0})
        assert result.schedule[1].lambda_delay == pytest.approx(5.0)

    def test_schedule_still_validates(self, synth_sim):
        dfg = dfg_of("fast_cpu", "fast_gpu", "uniform", deps=[(0, 2)])
        result = synth_sim.run(dfg, OLB(), arrivals={1: 7.0, 2: 12.0})
        result.schedule.validate(dfg)


class TestApplicationStream:
    def test_merged_renumbers_contiguously(self):
        stream = ApplicationStream(
            [
                ApplicationArrival(two_kernel_app(), 0.0),
                ApplicationArrival(two_kernel_app("fast_gpu"), 40.0),
            ]
        )
        merged, arrivals = stream.merged()
        assert merged.kernel_ids() == [0, 1, 2, 3]
        assert merged.edges() == [(0, 1), (2, 3)]
        assert arrivals == {0: 0.0, 1: 0.0, 2: 40.0, 3: 40.0}

    def test_applications_sorted_by_arrival(self):
        stream = ApplicationStream(
            [
                ApplicationArrival(two_kernel_app(), 50.0),
                ApplicationArrival(two_kernel_app(), 0.0),
            ]
        )
        assert [a.arrival_ms for a in stream] == [0.0, 50.0]

    def test_counts(self):
        stream = ApplicationStream([ApplicationArrival(two_kernel_app(), 5.0)])
        assert len(stream) == 1
        assert stream.n_kernels == 2
        assert stream.span_ms == 5.0

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            ApplicationStream([])

    def test_empty_application_rejected(self):
        with pytest.raises(ValueError):
            ApplicationArrival(DFG(), 0.0)

    def test_merged_runs_end_to_end(self, synth_sim):
        stream = ApplicationStream(
            [
                ApplicationArrival(two_kernel_app(), 0.0),
                ApplicationArrival(two_kernel_app("fast_gpu"), 15.0),
            ]
        )
        merged, arrivals = stream.merged()
        result = synth_sim.run(merged, APT(alpha=4.0), arrivals=arrivals)
        result.schedule.validate(merged)
        # the second app's kernels cannot start before t=15
        assert all(
            result.schedule[k].exec_start >= 15.0 for k in (2, 3)
        )


class TestStreamGenerators:
    def test_poisson_first_arrival_at_zero(self, rng):
        stream = poisson_stream(5, 100.0, lambda i, r: two_kernel_app(), rng)
        assert [a.arrival_ms for a in stream][0] == 0.0
        assert len(stream) == 5

    def test_poisson_deterministic_given_seed(self):
        a = poisson_stream(
            6, 50.0, lambda i, r: two_kernel_app(), np.random.default_rng(3)
        )
        b = poisson_stream(
            6, 50.0, lambda i, r: two_kernel_app(), np.random.default_rng(3)
        )
        assert [x.arrival_ms for x in a] == [x.arrival_ms for x in b]

    def test_poisson_parameter_validation(self, rng):
        with pytest.raises(ValueError):
            poisson_stream(0, 10.0, lambda i, r: two_kernel_app(), rng)
        with pytest.raises(ValueError):
            poisson_stream(3, 0.0, lambda i, r: two_kernel_app(), rng)

    def test_periodic_spacing(self, rng):
        stream = periodic_stream(4, 25.0, lambda i, r: two_kernel_app(), rng)
        assert [a.arrival_ms for a in stream] == [0.0, 25.0, 50.0, 75.0]

    def test_factory_receives_index(self, rng):
        seen = []
        periodic_stream(
            3, 1.0, lambda i, r: (seen.append(i), two_kernel_app())[1], rng
        )
        assert seen == [0, 1, 2]


class TestStreamingBehaviour:
    def test_saturated_stream_apt_beats_met(self, synth_sim_no_transfer, rng):
        # A bursty stream of GPU-favourite work: MET funnels everything to
        # the GPU while APT spills within the threshold.
        apps = [
            ApplicationArrival(dfg_of("fast_gpu", "fast_gpu", "fast_gpu"), i * 5.0)
            for i in range(4)
        ]
        merged, arrivals = ApplicationStream(apps).merged()
        met = synth_sim_no_transfer.run(merged, MET(), arrivals=arrivals)
        apt = synth_sim_no_transfer.run(merged, APT(alpha=5.0), arrivals=arrivals)
        assert apt.makespan < met.makespan

    def test_sparse_stream_has_no_queueing(self, synth_sim, rng):
        # Inter-arrival far above service time: every kernel starts at its
        # arrival instant, λ = 0.
        stream = periodic_stream(
            3, 1_000.0, lambda i, r: dfg_of("fast_cpu"), rng
        )
        merged, arrivals = stream.merged()
        result = synth_sim.run(merged, MET(), arrivals=arrivals)
        assert result.metrics.lambda_stats.total == pytest.approx(0.0)


# ----------------------------------------------------------------------
# property-based guard on the merged() id renumbering
# ----------------------------------------------------------------------
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.graphs.dfg import KernelSpec  # noqa: E402


@st.composite
def _random_app(draw):
    """A small random DAG (forward edges only, so acyclic by construction)."""
    n = draw(st.integers(min_value=1, max_value=6))
    edges = sorted(
        draw(
            st.sets(
                st.tuples(
                    st.integers(0, n - 1), st.integers(0, n - 1)
                ).filter(lambda e: e[0] < e[1]),
                max_size=8,
            )
        )
    )
    kernels = [
        KernelSpec(draw(st.sampled_from(["fast_cpu", "fast_gpu", "uniform"])), 1_000_000)
        for _ in range(n)
    ]
    return DFG.from_kernels(kernels, dependencies=edges)


@st.composite
def _random_stream(draw):
    apps = draw(st.lists(_random_app(), min_size=1, max_size=6))
    arrivals = [
        draw(st.floats(0.0, 500.0, allow_nan=False, allow_infinity=False))
        for _ in apps
    ]
    return ApplicationStream(
        [ApplicationArrival(dfg, t) for dfg, t in zip(apps, arrivals)]
    )


class TestMergedProperties:
    """The EventQueue/ApplicationStream id-renumbering contract: a merged
    stream preserves every edge, the arrival ordering, and each
    application's internal topology."""

    @settings(max_examples=60, deadline=None)
    @given(stream=_random_stream())
    def test_merged_preserves_structure(self, stream):
        merged, arrivals = stream.merged()
        apps = list(stream)  # sorted by arrival time (stable)

        # contiguous ids, one per source kernel, every id has an arrival
        n_total = sum(len(a.dfg) for a in apps)
        assert sorted(merged.kernel_ids()) == list(range(n_total))
        assert set(arrivals) == set(range(n_total))

        # block renumbering: app k owns ids [offset, offset + len)
        offset = 0
        expected_edges = []
        for app in apps:
            ids = app.dfg.kernel_ids()
            id_map = {kid: offset + i for i, kid in enumerate(ids)}
            # every kernel keeps its spec and inherits the app's arrival
            for kid in ids:
                assert merged.spec(id_map[kid]) == app.dfg.spec(kid)
                assert arrivals[id_map[kid]] == app.arrival_ms
            # internal topology is preserved under the renumbering
            expected_edges.extend(
                (id_map[u], id_map[v]) for u, v in app.dfg.edges()
            )
            offset += len(app.dfg)

        # exactly the per-application edges — nothing lost, nothing added,
        # and never an edge between two different applications
        assert sorted(merged.edges()) == sorted(expected_edges)

        # arrival ordering: ids are non-decreasing in application arrival
        # time (kernel id doubles as FCFS arrival order)
        id_arrivals = [arrivals[k] for k in sorted(arrivals)]
        app_spans = []
        offset = 0
        for app in apps:
            app_spans.append((offset, offset + len(app.dfg)))
            offset += len(app.dfg)
        for (lo, hi), app in zip(app_spans, apps):
            assert all(id_arrivals[i] == app.arrival_ms for i in range(lo, hi))
        assert id_arrivals == sorted(id_arrivals)

    @settings(max_examples=30, deadline=None)
    @given(stream=_random_stream())
    def test_merged_simulates_cleanly(self, stream):
        """Every merged stream is a valid simulator input."""
        from repro.core.simulator import Simulator
        from repro.core.system import CPU_GPU_FPGA
        from tests.conftest import make_synthetic_lookup

        merged, arrivals = stream.merged()
        sim = Simulator(CPU_GPU_FPGA(), make_synthetic_lookup())
        result = sim.run(merged, OLB(), arrivals=arrivals)
        assert len(result.schedule) == len(merged)


class TestPoissonStreamProperties:
    """Determinism law of poisson_stream: a fixed seed pins the whole
    arrival process, bit for bit.  (The cross-*process* form of this
    guarantee — a fresh interpreter reproduces the same floats — is
    checked in tests/test_sources.py.)"""

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=25),
        mean=st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_fixed_seed_is_bitwise_stable(self, n, mean, seed):
        def factory(i, rng):
            return dfg_of("fast_cpu")

        a = poisson_stream(n, mean, factory, np.random.default_rng(seed))
        b = poisson_stream(n, mean, factory, np.random.default_rng(seed))
        times_a = [x.arrival_ms for x in a]
        times_b = [x.arrival_ms for x in b]
        # bitwise equality, not approx: the sweep cache and the lazy
        # GeneratorSource equivalence both rest on exact floats
        assert times_a == times_b
        assert times_a[0] == 0.0
        assert times_a == sorted(times_a)
        assert a.last_arrival_ms == times_a[-1]
        assert a.span_ms == a.last_arrival_ms
