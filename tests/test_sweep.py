"""Tests for the parallel sweep engine and its result cache.

Covers the determinism contract the engine rests on: content hashes are
stable across processes, a parallel sweep is bit-identical to a serial
one, a warm cache performs zero new simulations, and worker failures
propagate instead of yielding partial results.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.core.lookup import KernelNotFoundError
from repro.core.system import CPU_GPU_FPGA
from repro.experiments.runner import ExperimentRunner
from repro.experiments.sweep import (
    SWEEP_FORMAT_VERSION,
    PolicySpec,
    ResultCache,
    SimSettings,
    SweepEngine,
    SweepJob,
    SweepSpec,
    execute_payload,
    hash_payload,
    make_job,
    resolve_workers,
    system_from_dict,
    system_to_dict,
)
from repro.graphs.dfg import DFG, KernelSpec
from tests.conftest import SYNTH_SIZE, make_synthetic_lookup


def small_dfg(name: str = "diamond") -> DFG:
    """A 4-kernel diamond over the synthetic lookup's kernels."""
    return DFG.from_kernels(
        [
            KernelSpec("fast_cpu", SYNTH_SIZE),
            KernelSpec("fast_gpu", SYNTH_SIZE),
            KernelSpec("fast_fpga", SYNTH_SIZE),
            KernelSpec("uniform", SYNTH_SIZE),
        ],
        dependencies=[(0, 1), (0, 2), (1, 3), (2, 3)],
        name=name,
    )


@pytest.fixture
def lookup():
    return make_synthetic_lookup()


@pytest.fixture
def system():
    return CPU_GPU_FPGA(transfer_rate_gbps=4.0)


def job_of(lookup, system, *, alpha: float = 4.0, name: str = "diamond", **kwargs):
    return make_job(
        small_dfg(name), PolicySpec.of("apt", alpha=alpha), system, lookup, **kwargs
    )


class TestContentHash:
    def test_identical_jobs_hash_equal(self, lookup, system):
        assert job_of(lookup, system).content_hash() == job_of(lookup, system).content_hash()

    def test_tag_does_not_affect_hash(self, lookup, system):
        a = job_of(lookup, system, tag={"graph_index": 1})
        b = job_of(lookup, system, tag={"graph_index": 2})
        assert a.content_hash() == b.content_hash()

    def test_provider_does_not_affect_hash(self, lookup, system):
        plain = make_job(small_dfg(), PolicySpec.of("met"), system, lookup)
        with_provider = make_job(
            small_dfg(), PolicySpec.of("met", provider="repro.policies.met"),
            system, lookup,
        )
        assert plain.content_hash() == with_provider.content_hash()

    @pytest.mark.parametrize(
        "change",
        [
            lambda lk, sys_: job_of(lk, sys_, alpha=8.0),
            lambda lk, sys_: job_of(lk, CPU_GPU_FPGA(transfer_rate_gbps=8.0)),
            lambda lk, sys_: job_of(lk, sys_, settings=SimSettings(exec_noise_sigma=0.1)),
            lambda lk, sys_: job_of(lk, sys_, arrivals={1: 5.0}),
            lambda lk, sys_: make_job(
                small_dfg(), PolicySpec.of("met"), sys_, lk
            ),
        ],
    )
    def test_semantic_change_changes_hash(self, lookup, system, change):
        assert (
            job_of(lookup, system).content_hash()
            != change(lookup, system).content_hash()
        )

    def test_hash_stable_across_processes(self, lookup, system):
        job = job_of(lookup, system)
        local = job.content_hash()
        with multiprocessing.get_context().Pool(2) as pool:
            remote = pool.map(hash_payload, [job.payload(), job.payload()])
        assert remote == [local, local]

    def test_digest_shortcut_matches_full_hash(self, lookup, system):
        via_make_job = job_of(lookup, system)
        assert via_make_job.lookup_digest is not None
        manual = SweepJob(
            dfg=dict(via_make_job.dfg),
            system=dict(via_make_job.system),
            lookup=list(via_make_job.lookup),
            policy=via_make_job.policy,
            settings=via_make_job.settings,
        )
        assert manual.lookup_digest is None
        assert manual.content_hash() == via_make_job.content_hash()

    def test_system_roundtrip(self, system):
        data = system_to_dict(system)
        rebuilt = system_from_dict(json.loads(json.dumps(data)))
        assert system_to_dict(rebuilt) == data


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = {"version": SWEEP_FORMAT_VERSION, "makespan": 1.5}
        cache.put("abc", record)
        assert cache.get("abc") == record
        assert "abc" in cache and len(cache) == 1

    def test_missing_and_corrupt_entries_are_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("nope") is None
        cache.path_for("bad").write_text("{not json", encoding="utf-8")
        assert cache.get("bad") is None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("old", {"version": SWEEP_FORMAT_VERSION + 1, "makespan": 1.0})
        assert cache.get("old") is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", {"version": SWEEP_FORMAT_VERSION})
        cache.put("b", {"version": SWEEP_FORMAT_VERSION})
        assert cache.clear() == 2
        assert len(cache) == 0


class TestSweepEngine:
    def test_memory_cache_hit_skips_simulation(self, lookup, system):
        engine = SweepEngine()
        job = job_of(lookup, system)
        first = engine.run_jobs([job])
        assert engine.stats.simulated == 1
        second = engine.run_jobs([job_of(lookup, system)])
        assert engine.stats.simulated == 1
        assert engine.stats.memory_hits == 1
        assert first == second

    def test_duplicates_within_batch_simulate_once(self, lookup, system):
        engine = SweepEngine()
        results = engine.run_jobs([job_of(lookup, system), job_of(lookup, system)])
        assert engine.stats.simulated == 1
        assert results[0] == results[1]

    def test_warm_disk_cache_performs_zero_simulations(self, lookup, system, tmp_path):
        jobs = [
            job_of(lookup, system, alpha=alpha, name=name)
            for alpha in (1.5, 4.0)
            for name in ("g1", "g2")
        ]
        cold = SweepEngine(cache_dir=tmp_path)
        expected = cold.run_jobs(jobs)
        assert cold.stats.simulated == len(jobs)

        warm = SweepEngine(cache_dir=tmp_path, workers=4)
        got = warm.run_jobs(jobs)
        assert warm.stats.simulated == 0
        assert warm.stats.disk_hits == len(jobs)
        assert got == expected

    def test_use_cache_false_always_simulates(self, lookup, system):
        engine = SweepEngine(use_cache=False)
        job = job_of(lookup, system)
        engine.run_jobs([job])
        engine.run_jobs([job])
        assert engine.stats.simulated == 2

    def test_parallel_bit_identical_to_serial(self, lookup, system):
        jobs = [
            make_job(small_dfg(f"g{i}"), spec, system, lookup)
            for i in range(3)
            for spec in (
                PolicySpec.of("apt", alpha=4.0),
                PolicySpec.of("met"),
                PolicySpec.of("heft"),
            )
        ]
        serial = SweepEngine(workers=1, use_cache=False).run_jobs(jobs)
        parallel = SweepEngine(workers=4, use_cache=False).run_jobs(jobs)
        assert serial == parallel  # bit-identical metrics, same order

    @pytest.mark.parametrize("workers", [1, 2])
    def test_worker_failure_propagates(self, lookup, system, workers):
        bad = make_job(
            DFG.from_kernels([KernelSpec("not_in_table", 10)], name="bad"),
            PolicySpec.of("met"),
            system,
            lookup,
        )
        engine = SweepEngine(workers=workers, use_cache=False)
        with pytest.raises(KernelNotFoundError):
            engine.run_jobs([job_of(lookup, system), bad])

    def test_strict_lookup_mode_survives_serialization(self, lookup, system):
        from repro.core.lookup import LookupTable

        strict = LookupTable(list(lookup.entries()), interpolate=False)
        unmeasured = DFG.from_kernels(
            [KernelSpec("fast_cpu", SYNTH_SIZE // 2)], name="odd_size"
        )
        job = make_job(unmeasured, PolicySpec.of("met"), system, strict)
        with pytest.raises(KeyError):
            SweepEngine().run_jobs([job])
        # strict and interpolating tables must not share cache entries
        loose = make_job(unmeasured, PolicySpec.of("met"), system, lookup)
        assert job.content_hash() != loose.content_hash()

    def test_unknown_policy_fails(self, lookup, system):
        job = make_job(small_dfg(), PolicySpec.of("bogus"), system, lookup)
        with pytest.raises(KeyError):
            SweepEngine().run_jobs([job])

    def test_execute_payload_matches_in_process_simulation(self, lookup, system):
        from repro.core.simulator import Simulator
        from repro.policies.registry import get_policy

        job = job_of(lookup, system, alpha=4.0)
        record = execute_payload(job.runnable_payload())
        direct = Simulator(system, lookup).run(small_dfg(), get_policy("apt", alpha=4.0))
        assert record["makespan"] == direct.makespan
        assert record["total_lambda"] == direct.metrics.lambda_stats.total

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1


class TestSweepSpec:
    def test_expand_covers_grid(self):
        spec = SweepSpec(
            policies=(PolicySpec.of("apt", alpha=4.0), PolicySpec.of("met")),
            dfg_types=(1, 2),
            rates_gbps=(4.0, 8.0),
            n_graphs=3,
        )
        jobs = spec.expand()
        assert len(jobs) == 2 * 2 * 2 * 3
        tags = {
            (t["dfg_type"], t["rate_gbps"], t["policy"], t["graph_index"])
            for t in (job.tag for job in jobs)
        }
        assert len(tags) == len(jobs)

    def test_seed_enters_hash(self):
        base = SweepSpec(policies=(PolicySpec.of("met"),), n_graphs=1)
        a = SweepSpec(**{**base.__dict__, "seeds": (1,)}).expand()
        b = SweepSpec(**{**base.__dict__, "seeds": (2,)}).expand()
        assert a[0].content_hash() != b[0].content_hash()


class TestRunnerIntegration:
    @pytest.fixture(scope="class")
    def suite(self):
        from repro.experiments.workloads import paper_type1_suite

        return paper_type1_suite()[:2]

    def test_parallel_runner_matches_serial(self, suite):
        serial = ExperimentRunner().compare_policies(suite, ("apt", "met"), apt_alpha=4.0)
        parallel = ExperimentRunner(workers=4).compare_policies(
            suite, ("apt", "met"), apt_alpha=4.0
        )
        assert serial == parallel

    def test_runner_warm_cache_rerun_simulates_nothing(self, suite, tmp_path):
        first = ExperimentRunner(cache_dir=tmp_path)
        first.run_suite(suite, "met")
        assert first.engine.stats.simulated == len(suite)

        rerun = ExperimentRunner(cache_dir=tmp_path)
        records = rerun.run_suite(suite, "met")
        assert rerun.engine.stats.simulated == 0
        assert [r.makespan for r in records] == [
            r.makespan for r in first.run_suite(suite, "met")
        ]

    def test_runner_memo_distinguishes_seeds(self):
        # suites from different seeds reuse graph *names*; the memo must
        # key on content, not name, when one runner serves both.
        from repro.experiments.workloads import paper_type1_suite

        runner = ExperimentRunner()
        seed1 = runner.run_one(0, paper_type1_suite(seed=1)[0], "met", 4.0)
        seed2 = runner.run_one(0, paper_type1_suite(seed=2)[0], "met", 4.0)
        assert seed1.graph_name == seed2.graph_name
        assert seed1.makespan != seed2.makespan

    def test_records_carry_energy(self, suite):
        rec = ExperimentRunner().run_one(0, suite[0], "met", 4.0)
        assert rec.energy_joules > 0
        assert rec.energy_delay_product > 0

    def test_static_overhead_not_cached_into_disk_results(self, suite, tmp_path):
        charged = ExperimentRunner(
            static_planning_overhead_per_kernel_ms=10.0, cache_dir=tmp_path
        )
        a = charged.run_one(0, suite[0], "heft", 4.0)
        # a second runner *without* the overhead reads the same cache entry
        plain = ExperimentRunner(cache_dir=tmp_path)
        b = plain.run_one(0, suite[0], "heft", 4.0)
        assert plain.engine.stats.simulated == 0
        assert a.makespan == pytest.approx(b.makespan + 10.0 * len(suite[0]))


class TestOpenSystemPayload:
    """v4 payload: app spans and the declarative source descriptor."""

    def test_app_spans_change_the_hash(self, lookup, system):
        from repro.core.metrics import AppSpan

        plain = job_of(lookup, system)
        spanned = job_of(
            lookup, system, app_spans=(AppSpan(0.0, 0, 2), AppSpan(0.0, 2, 4))
        )
        assert plain.content_hash() != spanned.content_hash()

    def test_source_descriptor_changes_the_hash(self, lookup, system):
        plain = job_of(lookup, system)
        sourced = job_of(
            lookup, system, source={"kind": "open_system", "seed": 1}
        )
        assert plain.content_hash() != sourced.content_hash()

    def test_service_fields_populated_when_spans_present(self, lookup, system):
        from repro.core.metrics import AppSpan
        from repro.experiments.sweep import JobResult

        job = job_of(lookup, system, app_spans=(AppSpan(0.0, 0, 4),))
        record = execute_payload(job.runnable_payload())
        result = JobResult.from_dict(record)
        assert result.n_applications == 1
        assert result.mean_response_ms > 0.0
        assert result.throughput_apps_per_s > 0.0
        assert result.mean_slowdown >= 1.0 - 1e-9
        # round trip preserves the service block
        assert JobResult.from_dict(result.to_dict()) == result

    def test_service_fields_zero_without_spans(self, lookup, system):
        from repro.experiments.sweep import JobResult

        record = execute_payload(job_of(lookup, system).runnable_payload())
        result = JobResult.from_dict(record)
        assert result.n_applications == 0
        assert result.mean_response_ms == 0.0

    def test_open_system_workload_unit_round_trips_through_engine(self, tmp_path):
        from repro.data.paper_tables import paper_lookup_table
        from repro.experiments.workloads import build_workload

        unit = build_workload(
            "open_system",
            n_applications=4,
            seed=1,
            profile="poisson",
            mean_interarrival_ms=5000.0,
        )[0]
        assert unit.app_spans is not None and len(unit.app_spans) == 4
        assert unit.source["kind"] == "open_system"
        job = make_job(
            unit.dfg,
            PolicySpec.of("met"),
            CPU_GPU_FPGA(),
            paper_lookup_table(),
            arrivals=unit.arrivals,
            app_spans=unit.app_spans,
            source=unit.source,
        )
        engine = SweepEngine(cache_dir=tmp_path)
        first = engine.run_jobs([job])[0]
        assert first.n_applications == 4
        warm = SweepEngine(cache_dir=tmp_path)
        again = warm.run_jobs([job])[0]
        assert warm.stats.simulated == 0
        assert again == first


# ----------------------------------------------------------------------
# cross-process cache index (the service seam's latent-bug fix)
# ----------------------------------------------------------------------
def _hammer_cache(args):
    """Worker: write unique + shared keys into one shared cache dir."""
    cache_dir, worker_id, n_unique, shared_keys = args
    cache = ResultCache(cache_dir)
    for j in range(n_unique):
        cache.put(f"w{worker_id}_k{j}", {"worker": worker_id, "j": j})
    for key in shared_keys:
        cache.put(key, {"worker": worker_id, "shared": key})
    return worker_id


class TestConcurrentCacheWriters:
    def test_concurrent_cache_writers(self, tmp_path):
        """N processes hammering one cache dir: the index read-modify-write
        must be exact (the pre-lock implementation lost updates)."""
        n_workers, n_unique, n_shared = 4, 12, 5
        shared_keys = [f"shared_{j}" for j in range(n_shared)]
        ctx = multiprocessing.get_context()
        with ctx.Pool(n_workers) as pool:
            pool.map(
                _hammer_cache,
                [(str(tmp_path), w, n_unique, shared_keys) for w in range(n_workers)],
            )
        cache = ResultCache(tmp_path)
        expected_entries = n_workers * n_unique + n_shared
        expected_puts = n_workers * (n_unique + n_shared)
        stats = cache.stats()
        assert stats["puts"] == expected_puts
        assert stats["entries"] == expected_entries
        # the index must agree with the actual entry files on disk
        assert len(cache) == expected_entries

    def test_index_files_are_not_cache_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k1", {"v": 1})
        assert len(cache) == 1  # index.meta / index.lock not counted
        assert cache.get("k1") is None or cache.get("k1") == {"v": 1}

    def test_clear_resets_index(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k1", {"v": 1})
        cache.put("k2", {"v": 2})
        assert cache.clear() == 2
        assert cache.stats() == {"puts": 0, "entries": 0}
        assert len(cache) == 0

    def test_repeat_put_counts_one_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        for _ in range(3):
            cache.put("k", {"v": 1})
        assert cache.stats() == {"puts": 3, "entries": 1}


# ----------------------------------------------------------------------
# progress + cancellation hooks on the sweep seam
# ----------------------------------------------------------------------
class TestProgressAndCancel:
    def jobs_of(self, lookup, system, n=3):
        return [
            job_of(lookup, system, name=f"g{i}", tag={"i": i}) for i in range(n)
        ]

    def test_progress_reports_every_job(self, lookup, system):
        engine = SweepEngine(workers=1)
        seen = []
        engine.run_jobs(
            self.jobs_of(lookup, system), progress=lambda d, t: seen.append((d, t))
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_progress_counts_cache_hits_in_one_step(self, lookup, system):
        engine = SweepEngine(workers=1)
        jobs = self.jobs_of(lookup, system)
        engine.run_jobs(jobs)
        seen = []
        engine.run_jobs(jobs, progress=lambda d, t: seen.append((d, t)))
        assert seen == [(3, 3)]

    def test_cancel_before_start_raises_immediately(self, lookup, system):
        from repro.experiments.sweep import SweepCancelled

        engine = SweepEngine(workers=1)
        with pytest.raises(SweepCancelled) as exc:
            engine.run_jobs(self.jobs_of(lookup, system), cancel=lambda: True)
        assert exc.value.done == 0
        assert exc.value.total == 3
        assert engine.stats.simulated == 0

    def test_cancel_mid_sweep_keeps_partial_results_cached(
        self, lookup, system, tmp_path
    ):
        from repro.experiments.sweep import SweepCancelled

        engine = SweepEngine(workers=1, cache_dir=tmp_path)
        jobs = self.jobs_of(lookup, system)
        fired = {"count": 0}

        def cancel_after_one():
            fired["count"] += 1
            return fired["count"] > 1  # first poll passes, second cancels

        with pytest.raises(SweepCancelled) as exc:
            engine.run_jobs(jobs, cancel=cancel_after_one)
        assert 0 < exc.value.done < 3
        assert len(exc.value.partial) == exc.value.done
        # the finished prefix is cached: a fresh engine resumes, not restarts
        resumed = SweepEngine(workers=1, cache_dir=tmp_path)
        results = resumed.run_jobs(jobs)
        assert len(results) == 3
        assert resumed.stats.disk_hits == exc.value.done
        assert resumed.stats.simulated == 3 - exc.value.done

    def test_pool_cancel_terminates_batch(self, lookup, system, tmp_path):
        from repro.experiments.sweep import ProcessPoolExecutor, SweepCancelled

        executor = ProcessPoolExecutor(workers=2)
        payloads = [
            job.runnable_payload() for job in self.jobs_of(lookup, system, n=4)
        ]
        fired = {"count": 0}

        def cancel_after_first():
            # poll 1 is the pre-dispatch check; poll 2 follows the first
            # completed payload
            fired["count"] += 1
            return fired["count"] >= 2

        with pytest.raises(SweepCancelled) as exc:
            executor.run(payloads, cancel=cancel_after_first)
        assert 1 <= exc.value.done < 4
        assert len(exc.value.partial) == exc.value.done

    def test_serial_matches_cancel_free_run(self, lookup, system):
        engine = SweepEngine(workers=1)
        jobs = self.jobs_of(lookup, system)
        plain = engine.run_jobs(jobs)
        hooked = SweepEngine(workers=1).run_jobs(
            jobs, progress=lambda d, t: None, cancel=lambda: False
        )
        assert hooked == plain
