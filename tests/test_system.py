"""Unit tests for the system model (processors, links, configuration)."""

import pytest

from repro.core.system import (
    CPU_GPU_FPGA,
    Link,
    Processor,
    ProcessorType,
    SystemConfig,
)


class TestProcessorType:
    def test_values_are_lowercase(self):
        assert ProcessorType.CPU.value == "cpu"
        assert ProcessorType.FPGA.value == "fpga"

    def test_constructible_from_string(self):
        assert ProcessorType("gpu") is ProcessorType.GPU

    def test_str_is_uppercase(self):
        assert str(ProcessorType.CPU) == "CPU"


class TestProcessor:
    def test_fields(self):
        p = Processor("cpu0", ProcessorType.CPU)
        assert p.name == "cpu0"
        assert p.ptype is ProcessorType.CPU

    def test_frozen(self):
        p = Processor("cpu0", ProcessorType.CPU)
        with pytest.raises(AttributeError):
            p.name = "x"

    def test_equality_by_value(self):
        assert Processor("a", ProcessorType.GPU) == Processor("a", ProcessorType.GPU)


class TestLink:
    def test_transfer_time_units(self):
        # 4 GB/s = 4e6 bytes/ms: 4e6 bytes take exactly 1 ms.
        link = Link("a", "b", rate_gbps=4.0)
        assert link.transfer_time_ms(4_000_000) == pytest.approx(1.0)

    def test_zero_bytes_is_free(self):
        assert Link("a", "b", 8.0).transfer_time_ms(0) == 0.0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            Link("a", "b", 0.0)
        with pytest.raises(ValueError):
            Link("a", "b", -1.0)

    def test_doubling_rate_halves_time(self):
        t4 = Link("a", "b", 4.0).transfer_time_ms(10_000_000)
        t8 = Link("a", "b", 8.0).transfer_time_ms(10_000_000)
        assert t4 == pytest.approx(2 * t8)


class TestSystemConfig:
    def test_default_platform_shape(self):
        system = CPU_GPU_FPGA()
        assert len(system) == 3
        assert [p.ptype for p in system] == [
            ProcessorType.CPU,
            ProcessorType.GPU,
            ProcessorType.FPGA,
        ]

    def test_custom_counts(self):
        system = CPU_GPU_FPGA(n_cpu=2, n_gpu=3, n_fpga=0)
        assert len(system.of_type(ProcessorType.CPU)) == 2
        assert len(system.of_type(ProcessorType.GPU)) == 3
        assert len(system.of_type(ProcessorType.FPGA)) == 0

    def test_rejects_empty_system(self):
        with pytest.raises(ValueError):
            SystemConfig([])
        with pytest.raises(ValueError):
            CPU_GPU_FPGA(n_cpu=0, n_gpu=0, n_fpga=0)

    def test_rejects_duplicate_names(self):
        procs = [Processor("x", ProcessorType.CPU), Processor("x", ProcessorType.GPU)]
        with pytest.raises(ValueError, match="duplicate"):
            SystemConfig(procs)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            CPU_GPU_FPGA(transfer_rate_gbps=0.0)

    def test_rate_validation_consistent_everywhere(self):
        # Regression: the default rate, the per-link overrides and the
        # Link constructor must all apply the same rule — reject zero,
        # negative and NaN; accept inf ("never the bottleneck").
        procs = [
            Processor("a", ProcessorType.CPU),
            Processor("b", ProcessorType.GPU),
        ]
        for bad in (0.0, -1.0, float("nan")):
            with pytest.raises(ValueError):
                SystemConfig(procs, transfer_rate_gbps=bad)
            with pytest.raises(ValueError):
                SystemConfig(procs, link_overrides={("a", "b"): bad})
            with pytest.raises(ValueError):
                Link("a", "b", bad)
        inf = float("inf")
        system = SystemConfig(procs, link_overrides={("a", "b"): inf})
        assert system.transfer_time_ms("a", "b", 1e12) == 0.0
        assert Link("a", "b", inf).transfer_time_ms(1e12) == 0.0

    def test_lookup_by_name(self):
        system = CPU_GPU_FPGA()
        assert system["gpu0"].ptype is ProcessorType.GPU
        assert "fpga0" in system
        assert "nope" not in system

    def test_processor_types_in_order(self):
        system = CPU_GPU_FPGA()
        assert system.processor_types() == (
            ProcessorType.CPU,
            ProcessorType.GPU,
            ProcessorType.FPGA,
        )

    def test_same_processor_transfer_is_free(self):
        system = CPU_GPU_FPGA()
        assert system.transfer_time_ms("cpu0", "cpu0", 1_000_000_000) == 0.0

    def test_uniform_rate_applies_between_all_pairs(self):
        system = CPU_GPU_FPGA(transfer_rate_gbps=4.0)
        nbytes = 8_000_000
        expected = 2.0  # 8e6 bytes at 4e6 bytes/ms
        for a in ("cpu0", "gpu0", "fpga0"):
            for b in ("cpu0", "gpu0", "fpga0"):
                if a != b:
                    assert system.transfer_time_ms(a, b, nbytes) == pytest.approx(expected)

    def test_link_override_is_symmetric_by_default(self):
        procs = [
            Processor("a", ProcessorType.CPU),
            Processor("b", ProcessorType.GPU),
        ]
        system = SystemConfig(procs, transfer_rate_gbps=4.0, link_overrides={("a", "b"): 8.0})
        assert system.link("a", "b").rate_gbps == 8.0
        assert system.link("b", "a").rate_gbps == 8.0

    def test_directional_override_wins(self):
        procs = [
            Processor("a", ProcessorType.CPU),
            Processor("b", ProcessorType.GPU),
        ]
        system = SystemConfig(
            procs,
            transfer_rate_gbps=4.0,
            link_overrides={("a", "b"): 8.0, ("b", "a"): 2.0},
        )
        assert system.link("a", "b").rate_gbps == 8.0
        assert system.link("b", "a").rate_gbps == 2.0

    def test_override_unknown_processor_rejected(self):
        with pytest.raises(KeyError):
            SystemConfig(
                [Processor("a", ProcessorType.CPU)],
                link_overrides={("a", "ghost"): 4.0},
            )

    def test_unknown_link_query_rejected(self):
        system = CPU_GPU_FPGA()
        with pytest.raises(KeyError):
            system.link("cpu0", "ghost")

    def test_describe_mentions_every_processor(self):
        system = CPU_GPU_FPGA()
        text = system.describe()
        for p in system:
            assert p.name in text

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            CPU_GPU_FPGA(n_cpu=-1)
