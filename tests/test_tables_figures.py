"""Tests for the table/figure reproducers (structure + key invariants).

One module-scoped runner memoizes all simulations, so the whole module
costs roughly one pass over the two 10-graph suites.
"""

import pytest

from repro.experiments import figures, tables
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


class TestMakespanTables:
    def test_table8_shape(self, runner):
        t = tables.table8(runner=runner)
        assert t.headers == ("Graph", "APT", "MET", "SPN", "SS", "AG", "HEFT", "PEFT")
        assert len(t.rows) == 10
        assert t.column("Graph") == list(range(1, 11))

    def test_table8_apt_equals_met_at_alpha_small(self, runner):
        t = tables.table8(runner=runner)
        assert all(
            abs(a - m) / m < 0.02
            for a, m in zip(t.column("APT"), t.column("MET"))
        )

    def test_table9_structure_and_positive_values(self, runner):
        t = tables.table9(runner=runner)
        assert len(t.rows) == 10
        for name in ("APT", "MET", "SPN", "SS", "AG", "HEFT", "PEFT"):
            assert all(v > 0 for v in t.column(name))

    def test_table10_apt_beats_met(self, runner):
        t = tables.table10(runner=runner)
        wins = sum(
            1 for a, m in zip(t.column("APT"), t.column("MET")) if a < m - 1e-9
        )
        assert wins >= 9

    def test_table10_notes_mention_alpha4(self, runner):
        assert "α=4" in tables.table10(runner=runner).notes


class TestLambdaTables:
    def test_table11_and_12_shapes(self, runner):
        for fn in (tables.table11, tables.table12):
            t = fn(runner=runner)
            assert len(t.rows) == 10
            assert len(t.headers) == 8

    def test_table12_apt_lambda_below_met(self, runner):
        t = tables.table12(runner=runner)
        apt = sum(t.column("APT"))
        met = sum(t.column("MET"))
        assert apt < met


class TestImprovementTable:
    def test_table13_covers_all_alphas(self, runner):
        t = tables.table13(runner=runner)
        assert t.column("alpha") == [1.5, 2.0, 4.0, 8.0, 16.0]

    def test_table13_alpha4_positive_both_types(self, runner):
        t = tables.table13(runner=runner)
        row4 = next(r for r in t.rows if r[0] == 4.0)
        assert row4[1] > 0  # Type-1 exec improvement
        assert row4[3] > 0  # Type-2 exec improvement

    def test_table13_alpha_small_near_zero(self, runner):
        t = tables.table13(runner=runner)
        row = next(r for r in t.rows if r[0] == 1.5)
        assert abs(row[1]) < 2.0  # paper: -0.1


class TestAllocationTables:
    def test_table15_structure(self, runner):
        t = tables.table15(runner=runner)
        assert len(t.rows) == 10
        assert t.column("Total kernels") == [46, 58, 50, 73, 69, 81, 125, 93, 132, 157]

    def test_table15_alpha_effect(self, runner):
        low = sum(tables.table15(alpha=1.5, runner=runner).column("Alt assignments"))
        high = sum(tables.table15(alpha=4.0, runner=runner).column("Alt assignments"))
        assert low < high

    def test_table16_breakdown_sums(self, runner):
        t = tables.table16(runner=runner)
        for row in t.rows:
            total, breakdown = row[2], row[3]
            if total == 0:
                assert breakdown == "0"
            else:
                counted = sum(
                    int(part.split("-")[0]) for part in breakdown.split(", ")
                )
                assert counted == total


class TestFigures:
    def test_figure5_exact_end_times(self):
        ex = figures.figure5_schedule_example()
        assert ex.met_end_time == pytest.approx(318.093)
        assert ex.apt_end_time == pytest.approx(212.093)

    def test_figure5_traces_render(self):
        ex = figures.figure5_schedule_example()
        assert "0-nw" in ex.met_trace
        assert "2-bfs" in ex.apt_trace

    def test_figure6_top4_policies(self, runner):
        f = figures.figure6(runner=runner)
        assert set(f.series) == {"APT", "MET", "HEFT", "PEFT"}
        assert all(len(v) == 1 for v in f.series.values())

    def test_figure6_apt_equals_met(self, runner):
        f = figures.figure6(runner=runner)
        assert f.series["APT"][0] == pytest.approx(f.series["MET"][0], rel=0.01)

    def test_figure7_valley(self, runner):
        f = figures.figure7(runner=runner)
        series = f.series["4 GBps"]
        alphas = list(f.x_values)
        at = dict(zip(alphas, series))
        assert at[4.0] < at[1.5]
        assert at[4.0] < at[16.0]

    def test_figure9_valley(self, runner):
        f = figures.figure9(runner=runner)
        at = dict(zip(f.x_values, f.series["4 GBps"]))
        assert at[4.0] < at[1.5] and at[4.0] < at[16.0]

    def test_figure7_has_both_rates(self, runner):
        f = figures.figure7(runner=runner)
        assert set(f.series) == {"4 GBps", "8 GBps"}

    def test_figure10_per_experiment_series(self, runner):
        f = figures.figure10_apt_vs_met(runner=runner)
        assert f.x_values == tuple(range(1, 11))
        wins = sum(1 for a, m in zip(f.series["APT"], f.series["MET"]) if a < m)
        assert wins >= 9

    def test_figure11_12_lambda_series_positive(self, runner):
        for fn in (figures.figure11, figures.figure12):
            f = fn(runner=runner, rates=(4.0,))
            assert all(v > 0 for v in f.series["4 GBps"])

    def test_figure12_lambda_valley(self, runner):
        f = figures.figure12(runner=runner)
        at = dict(zip(f.x_values, f.series["4 GBps"]))
        assert at[4.0] < at[1.5] and at[4.0] < at[16.0]
