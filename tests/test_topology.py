"""Unit tests for the interconnect-topology model (`repro.core.topology`)."""

import math

import pytest

from repro.core.system import Processor, ProcessorType, SystemConfig
from repro.core.topology import (
    ContentionManager,
    TopoLink,
    Topology,
    bus_topology,
    fat_tree_topology,
    mesh_topology,
    star_topology,
    tree_topology,
)


class TestTopoLink:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            TopoLink("a", "b", 0.0)
        with pytest.raises(ValueError):
            TopoLink("a", "b", -4.0)

    def test_rejects_nan_bandwidth_and_latency(self):
        with pytest.raises(ValueError):
            TopoLink("a", "b", float("nan"))
        with pytest.raises(ValueError):
            TopoLink("a", "b", 4.0, latency_ms=float("nan"))

    def test_accepts_infinite_bandwidth(self):
        assert math.isinf(TopoLink("a", "b", float("inf")).bandwidth_gbps)

    def test_rejects_negative_latency_and_self_link(self):
        with pytest.raises(ValueError):
            TopoLink("a", "b", 4.0, latency_ms=-1.0)
        with pytest.raises(ValueError):
            TopoLink("a", "a", 4.0)


class TestTopologyConstruction:
    def test_rejects_duplicate_links(self):
        with pytest.raises(ValueError, match="duplicate"):
            Topology([TopoLink("a", "b", 4.0), TopoLink("b", "a", 8.0)])

    def test_rejects_disconnected_processors(self):
        with pytest.raises(ValueError, match="disconnected"):
            Topology([TopoLink("a", "b", 4.0), TopoLink("c", "d", 4.0)])

    def test_rejects_all_switch_topology(self):
        with pytest.raises(ValueError, match="processor node"):
            Topology([TopoLink("s1", "s2", 4.0)], switches=["s1", "s2"])

    def test_rejects_medium_bandwidth_disagreement(self):
        with pytest.raises(ValueError, match="disagree"):
            Topology(
                [
                    TopoLink("a", "x", 4.0, medium="bus"),
                    TopoLink("b", "x", 8.0, medium="bus"),
                ],
                switches=["x"],
            )

    def test_processor_nodes_exclude_switches(self):
        topo = star_topology(["a", "b"], 4.0, switch="hub")
        assert topo.processor_nodes == ("a", "b")
        assert topo.switches == frozenset({"hub"})


class TestRoutes:
    def test_star_route_two_hops_bottleneck(self):
        topo = star_topology(["a", "b", "c"], 4.0)
        route = topo.route("a", "b")
        assert route.hops == ("a", "hub", "b")
        assert route.bottleneck_gbps == 4.0
        assert route.latency_ms == 0.0

    def test_route_bottleneck_is_min_bandwidth(self):
        topo = tree_topology({"l0": ["a"], "l1": ["b"]}, leaf_gbps=4.0, uplink_gbps=16.0)
        assert topo.route("a", "b").bottleneck_gbps == 4.0

    def test_route_latency_sums_over_hops(self):
        topo = Topology(
            [
                TopoLink("a", "s", 4.0, latency_ms=0.25),
                TopoLink("s", "b", 4.0, latency_ms=0.5),
            ],
            switches=["s"],
        )
        assert topo.route("a", "b").latency_ms == pytest.approx(0.75)

    def test_transfer_time_is_latency_plus_bottleneck_division(self):
        topo = Topology(
            [
                TopoLink("a", "s", 4.0, latency_ms=1.0),
                TopoLink("s", "b", 8.0),
            ],
            switches=["s"],
        )
        # bottleneck 4 GB/s = 4e6 bytes/ms; 4e6 bytes = 1 ms, plus 1 ms latency
        assert topo.transfer_time_ms("a", "b", 4_000_000) == pytest.approx(2.0)

    def test_same_node_transfer_is_free(self):
        topo = star_topology(["a", "b"], 4.0)
        assert topo.transfer_time_ms("a", "a", 1e9) == 0.0

    def test_unknown_route_rejected(self):
        topo = star_topology(["a", "b"], 4.0)
        with pytest.raises(KeyError):
            topo.route("a", "ghost")

    def test_mesh_prefers_direct_link(self):
        topo = mesh_topology(["g0", "g1", "g2"], mesh_gbps=25.0)
        assert topo.route("g0", "g2").hops == ("g0", "g2")

    def test_shared_medium_counts_once_per_route(self):
        topo = bus_topology(["a", "b"], 1.0)
        route = topo.route("a", "b")
        # two hops over the bus medium collapse to one contention channel
        assert len(route.channels) == 1

    def test_fat_tree_shape(self):
        procs = [f"p{i}" for i in range(12)]
        topo = fat_tree_topology(procs, leaf_size=3, edge_gbps=8.0, uplink_gbps=16.0)
        assert topo.processor_nodes == tuple(sorted(procs))
        # intra-leaf: 2 hops through the leaf; cross-leaf: 4 hops via root
        assert len(topo.route("p0", "p1").hops) == 3
        assert len(topo.route("p0", "p3").hops) == 5
        assert topo.route("p0", "p3").bottleneck_gbps == 8.0


class TestSerialization:
    def test_round_trip(self):
        topo = tree_topology(
            {"s0": ["a", "b"], "s1": ["c"]},
            leaf_gbps=8.0,
            uplink_gbps=16.0,
            contention=True,
            name="t",
        )
        clone = Topology.from_dict(topo.to_dict())
        assert clone.to_dict() == topo.to_dict()
        assert clone.contended is True
        assert clone.route("a", "c").hops == topo.route("a", "c").hops

    def test_infinite_bandwidth_round_trips_via_json(self):
        import json

        topo = Topology([TopoLink("a", "b", float("inf"))])
        blob = json.dumps(topo.to_dict())
        clone = Topology.from_dict(json.loads(blob))
        assert math.isinf(clone.links[0].bandwidth_gbps)


class TestContentionManager:
    def make(self, n=3, bw=1.0):
        topo = bus_topology([f"p{i}" for i in range(n)], bw)
        return topo, ContentionManager(topo)

    def test_single_flow_drains_at_full_bandwidth(self):
        topo, cman = self.make()
        ests = cman.join("f1", topo.route("p0", "p1"), 1_000_000, now=0.0)
        assert len(ests) == 1
        # 1 GB/s = 1e6 bytes/ms: 1e6 bytes take exactly 1 ms
        assert ests[0].finish_time == pytest.approx(1.0)

    def test_two_flows_share_the_bus_equally(self):
        topo, cman = self.make()
        cman.join("f1", topo.route("p0", "p1"), 1_000_000, now=0.0)
        ests = cman.join("f2", topo.route("p2", "p1"), 1_000_000, now=0.0)
        # both flows now drain at half rate: 2 ms from now
        assert {e.key for e in ests} == {"f1", "f2"}
        for est in ests:
            assert est.finish_time == pytest.approx(2.0)

    def test_departure_restores_full_bandwidth(self):
        topo, cman = self.make()
        cman.join("f1", topo.route("p0", "p1"), 1_000_000, now=0.0)
        ests = cman.join("f2", topo.route("p2", "p1"), 500_000, now=0.0)
        f2 = next(e for e in ests if e.key == "f2")
        # f2's 0.5e6 bytes at half rate (0.5e6 bytes/ms) -> done at t=1
        assert f2.finish_time == pytest.approx(1.0)
        out = cman.complete("f2", f2.version, now=1.0)
        # f1 drained 0.5e6 at half rate; remaining 0.5e6 at full rate -> 1.5
        assert [e.key for e in out] == ["f1"]
        assert out[0].finish_time == pytest.approx(1.5)

    def test_stale_version_returns_none(self):
        topo, cman = self.make()
        ests = cman.join("f1", topo.route("p0", "p1"), 1_000_000, now=0.0)
        stale = ests[0].version - 1
        assert cman.complete("f1", stale, now=1.0) is None
        assert "f1" in cman

    def test_duplicate_flow_key_rejected(self):
        topo, cman = self.make()
        cman.join("f1", topo.route("p0", "p1"), 1_000, now=0.0)
        with pytest.raises(ValueError):
            cman.join("f1", topo.route("p0", "p1"), 1_000, now=0.0)

    def test_disjoint_channels_do_not_contend(self):
        topo = star_topology(["a", "b", "c", "d"], 4.0)
        cman = ContentionManager(topo)
        cman.join("f1", topo.route("a", "b"), 4_000_000, now=0.0)
        ests = cman.join("f2", topo.route("c", "d"), 4_000_000, now=0.0)
        # routes a-hub-b and c-hub-d share no edge: both run at full rate
        for est in ests:
            assert est.finish_time == pytest.approx(1.0)


class TestSystemIntegration:
    def procs(self):
        return [
            Processor("cpu0", ProcessorType.CPU),
            Processor("gpu0", ProcessorType.GPU),
        ]

    def test_topology_must_cover_system_processors(self):
        with pytest.raises(ValueError, match="match"):
            SystemConfig(self.procs(), topology=star_topology(["cpu0"], 4.0))

    def test_topology_excludes_link_overrides(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            SystemConfig(
                self.procs(),
                link_overrides={("cpu0", "gpu0"): 8.0},
                topology=star_topology(["cpu0", "gpu0"], 4.0),
            )

    def test_star_transfer_matches_flat_bit_for_bit(self):
        flat = SystemConfig(self.procs(), transfer_rate_gbps=4.0)
        star = SystemConfig(
            self.procs(), topology=star_topology(["cpu0", "gpu0"], 4.0)
        )
        for nbytes in (1, 1234, 4_000_000, 123_456_789):
            assert star.transfer_time_ms("cpu0", "gpu0", nbytes) == flat.transfer_time_ms(
                "cpu0", "gpu0", nbytes
            )

    def test_route_query_none_on_flat_systems(self):
        flat = SystemConfig(self.procs())
        assert flat.route("cpu0", "gpu0") is None
        star = SystemConfig(
            self.procs(), topology=star_topology(["cpu0", "gpu0"], 4.0)
        )
        assert star.route("cpu0", "gpu0").hops == ("cpu0", "hub", "gpu0")

    def test_context_transfer_sources_skip_zero_cost_routes(self):
        # SchedulingContext.transfer_sources mirrors the simulator's
        # contended-transfer source filter: a route that charges nothing
        # (infinite bandwidth, zero latency) opens no flow.
        from repro.data.paper_tables import paper_lookup_table
        from repro.graphs.dfg import DFG, KernelSpec
        from repro.policies.base import SchedulingContext

        procs = [
            Processor("a", ProcessorType.CPU),
            Processor("b", ProcessorType.GPU),
            Processor("c", ProcessorType.FPGA),
        ]
        topo = Topology(
            [
                TopoLink("a", "c", float("inf")),
                TopoLink("b", "c", 4.0),
                TopoLink("a", "b", 4.0),
            ]
        )
        system = SystemConfig(procs, topology=topo)
        dfg = DFG("t")
        k0 = dfg.add_kernel(KernelSpec("matmul", 1000))
        k1 = dfg.add_kernel(KernelSpec("bfs", 1000))
        k2 = dfg.add_kernel(KernelSpec("srad", 1000))
        dfg.add_dependencies([(k0, k2), (k1, k2)])
        ctx = SchedulingContext(
            time=0.0,
            ready=(k2,),
            dfg=dfg,
            system=system,
            lookup=paper_lookup_table(),
            assignment_of={k0: "a", k1: "b"},
        )
        assert ctx.transfer_sources(k2, "c") == ["b"]  # a->c is free (inf bw)
        assert ctx.transfer_sources(k2, "a") == ["b"]  # k0 already on target
        assert ctx.transfer_sources(k0, "c") == []  # entry kernel

    def test_describe_mentions_topology(self):
        star = SystemConfig(
            self.procs(), topology=star_topology(["cpu0", "gpu0"], 4.0, name="mystar")
        )
        assert "mystar" in star.describe()
