"""Unit tests for state traces (the Figure 5 view)."""

import pytest

from repro.core.simulator import Simulator
from repro.core.trace import StateTrace
from repro.policies.met import MET
from tests.test_simulator import dfg_of


class TestStateTrace:
    @pytest.fixture
    def traced(self, system, synth_lookup):
        sim = Simulator(system, synth_lookup, collect_trace=True)
        dfg = dfg_of("fast_cpu", "fast_gpu")
        return sim.run(dfg, MET())

    def test_snapshot_at_time_zero_shows_both_running(self, traced):
        occ = traced.trace.occupancy_at(0.0)
        assert occ["cpu0"] == "0-fast_cpu"
        assert occ["gpu0"] == "1-fast_gpu"
        assert occ["fpga0"] is None

    def test_final_snapshot_is_all_idle(self, traced):
        last = traced.trace.snapshots[-1]
        assert all(v is None for v in last.occupancy.values())

    def test_format_contains_idle_and_kernels(self, traced, system):
        text = traced.trace.format(system)
        assert "idle" in text
        assert "0-fast_cpu" in text

    def test_occupancy_before_first_snapshot_raises(self, traced):
        with pytest.raises(ValueError):
            traced.trace.occupancy_at(-1.0)

    def test_rebuild_from_schedule_matches(self, traced, system):
        rebuilt = StateTrace.from_schedule(traced.schedule, system)
        assert len(rebuilt) == len(traced.trace)
        assert rebuilt.occupancy_at(0.0) == traced.trace.occupancy_at(0.0)

    def test_snapshot_count_bounded_by_events(self, traced):
        # one snapshot per distinct start/finish instant
        assert 2 <= len(traced.trace) <= 4
