"""Tests for the evaluation suites and the experiment runner."""

import pytest

from repro.data.paper_tables import PAPER_GRAPH_SIZES
from repro.experiments.runner import ExperimentRunner
from repro.experiments.workloads import (
    paper_suite,
    paper_type1_suite,
    paper_type2_suite,
)


class TestSuites:
    def test_type1_suite_sizes_match_tables(self):
        suite = paper_type1_suite()
        assert [len(g) for g in suite] == list(PAPER_GRAPH_SIZES)

    def test_type2_suite_sizes_match_tables(self):
        suite = paper_type2_suite()
        assert [len(g) for g in suite] == list(PAPER_GRAPH_SIZES)

    def test_suites_are_deterministic(self):
        a, b = paper_type1_suite(), paper_type1_suite()
        for ga, gb in zip(a, b):
            assert [ga.spec(i) for i in ga] == [gb.spec(i) for i in gb]

    def test_different_seed_changes_contents(self):
        a = paper_type1_suite(seed=1)
        b = paper_type1_suite(seed=2)
        assert any(
            [ga.spec(i) for i in ga] != [gb.spec(i) for i in gb]
            for ga, gb in zip(a, b)
        )

    def test_both_types_share_kernel_streams(self):
        # Same seeds feed both suites (the paper fits one kernel series
        # into either graph model).
        t1 = paper_type1_suite()[0]
        t2 = paper_type2_suite()[0]
        assert [t1.spec(i) for i in t1] == [t2.spec(i) for i in t2]

    def test_selector(self):
        assert len(paper_suite(1)) == 10
        assert len(paper_suite(2)) == 10
        with pytest.raises(ValueError):
            paper_suite(3)

    def test_graphs_validate(self):
        for g in paper_type2_suite():
            g.validate()


class TestRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        return ExperimentRunner()

    @pytest.fixture(scope="class")
    def small_suite(self):
        return paper_type1_suite()[:2]

    def test_run_one_record_fields(self, runner, small_suite):
        rec = runner.run_one(0, small_suite[0], "met", 4.0)
        assert rec.policy == "met"
        assert rec.makespan > 0
        assert rec.n_kernels == len(small_suite[0])
        assert rec.alpha is None

    def test_memoization_returns_identical_record(self, runner, small_suite):
        a = runner.run_one(0, small_suite[0], "met", 4.0)
        b = runner.run_one(0, small_suite[0], "met", 4.0)
        assert a is b

    def test_alpha_distinguishes_cache_entries(self, runner, small_suite):
        a = runner.run_one(0, small_suite[0], "apt", 4.0, alpha=1.5)
        b = runner.run_one(0, small_suite[0], "apt", 4.0, alpha=16.0)
        assert a is not b

    def test_run_suite_order(self, runner, small_suite):
        recs = runner.run_suite(small_suite, "met")
        assert [r.graph_index for r in recs] == [0, 1]

    def test_compare_policies_passes_alpha_to_apt_only(self, runner, small_suite):
        out = runner.compare_policies(small_suite, ("apt", "met"), apt_alpha=2.0)
        assert all(r.alpha == 2.0 for r in out["apt"])
        assert all(r.alpha is None for r in out["met"])

    def test_alpha_sweep_covers_grid(self, runner, small_suite):
        sweep = runner.alpha_sweep(small_suite, alphas=(1.5, 4.0), rates=(4.0, 8.0))
        assert set(sweep) == {(1.5, 4.0), (1.5, 8.0), (4.0, 4.0), (4.0, 8.0)}

    def test_apt_records_alternative_breakdown(self, runner, small_suite):
        recs = runner.run_suite(small_suite, "apt", 4.0, alpha=16.0)
        rec = recs[0]
        assert rec.n_alternative == sum(rec.alternative_by_kernel.values())

    def test_static_overhead_knob(self, small_suite):
        plain = ExperimentRunner()
        charged = ExperimentRunner(static_planning_overhead_per_kernel_ms=10.0)
        a = plain.run_one(0, small_suite[0], "heft", 4.0)
        b = charged.run_one(0, small_suite[0], "heft", 4.0)
        assert b.makespan == pytest.approx(a.makespan + 10.0 * len(small_suite[0]))
        # dynamic policies are never charged
        c = charged.run_one(0, small_suite[0], "met", 4.0)
        d = plain.run_one(0, small_suite[0], "met", 4.0)
        assert c.makespan == pytest.approx(d.makespan)
