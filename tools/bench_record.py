#!/usr/bin/env python3
"""Record an engine-backend benchmark entry in ``BENCH_engine.json``.

``BENCH_engine.json`` is the committed benchmark trajectory of the
array-backend hot path: every entry pins the git revision it was
measured at, the scenario, the wall-clock of both backends and the
speedup.  The trajectory documents how the hot path evolved; CI's smoke
benchmark (``benchmarks/test_bench_simulator_scale.py``) reads the last
comparable entry for its scenario and fails when the measured speedup
regresses more than 20 % below it.

Usage::

    python tools/bench_record.py                  # smoke scenario (1.2k)
    python tools/bench_record.py --kernels 100000 # the acceptance entry
    python tools/bench_record.py --dry-run        # measure, don't append
    python tools/bench_record.py --scenario streaming_scale_1m \\
        --no-baseline                             # lazy 1M stream, array only

A revision is stamped ``<short-rev>+dirty`` when the worktree has
uncommitted changes, so an entry recorded *before* its commit is
identifiable as such (the first three trajectory entries predate this
and carry the seed revision).

``--no-baseline`` skips the object-backend run — at 100k kernels the
object baseline takes hours, so big entries record the array wall-clock
(plus its profile counters) and leave the speedup to the smoke-scale
trajectory.  Wall-clock numbers are machine-dependent; the *speedup*
column is the portable quantity — both backends run the identical
simulation on the identical machine, so their ratio tracks algorithmic
regressions, not hardware.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from datetime import date
from pathlib import Path

_ROOT = Path(__file__).parent.parent
_SRC = str(_ROOT / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

BENCH_FILE = _ROOT / "BENCH_engine.json"

#: the streaming saturation scenario all trajectory entries share:
#: Poisson application stream on the 12-processor scale system, APT,
#: mean interarrival far below the service capacity so the ready set
#: grows into the regime the array backend is built for.
SCENARIO_DEFAULTS = {"mean_interarrival_ms": 300.0, "seed": 42, "policy": "apt"}

#: profile counters worth committing alongside big entries — the
#: bounded-memory evidence (rows recycled vs table high-water mark).
_PROFILE_KEYS = (
    "n_epochs",
    "events_per_epoch",
    "kernel_table_rows",
    "rows_released",
)


def git_rev() -> str:
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        porcelain = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.splitlines()
        # the trajectory file itself doesn't count: appending entry N
        # must not stamp entry N+1 of the same batch as dirty
        dirty = [
            line for line in porcelain
            if line[3:].strip() != BENCH_FILE.name
        ]
        return f"{rev}+dirty" if dirty else rev
    except (subprocess.CalledProcessError, OSError):
        return "unknown"


def run_backend(
    backend: str,
    n_kernels: int,
    repeats: int,
    jit: "str | bool | None" = None,
    mean_interarrival_ms: float | None = None,
) -> float:
    """Best-of-``repeats`` wall-clock (ms) of the scenario on ``backend``."""
    best, _ = run_backend_profiled(
        backend, n_kernels, repeats, jit=jit,
        mean_interarrival_ms=mean_interarrival_ms,
    )
    return best


def run_backend_profiled(
    backend: str,
    n_kernels: int,
    repeats: int,
    jit: "str | bool | None" = None,
    mean_interarrival_ms: float | None = None,
) -> "tuple[float, dict | None]":
    """Like :func:`run_backend`, also returning the engine's profile
    counters (``None`` on the object backend, which has no profiler)."""
    from repro.core.simulator import Simulator
    from repro.data.paper_tables import paper_lookup_table
    from repro.experiments.workloads import scale_system, streaming_scale_source
    from repro.policies.registry import get_policy

    system = scale_system()
    lookup = paper_lookup_table()
    if mean_interarrival_ms is None:
        mean_interarrival_ms = SCENARIO_DEFAULTS["mean_interarrival_ms"]
    # the lazy source replays streaming_scale_stream bit-for-bit but
    # never holds the whole stream — a 1M-kernel run stays bounded.
    source = streaming_scale_source(
        n_kernels=n_kernels,
        seed=SCENARIO_DEFAULTS["seed"],
        mean_interarrival_ms=mean_interarrival_ms,
    )
    best = float("inf")
    profile: "dict | None" = None
    for _ in range(repeats):
        sim = Simulator(system, lookup, backend=backend, jit=jit)
        t0 = time.perf_counter()
        sim.run_stream(
            source,
            get_policy(SCENARIO_DEFAULTS["policy"]),
            retain_schedule=False,
        )
        wall = (time.perf_counter() - t0) * 1000.0
        if wall < best:
            best = wall
            profile = sim.last_profile
    return best, profile


def load_entries() -> list[dict]:
    if not BENCH_FILE.exists():
        return []
    return json.loads(BENCH_FILE.read_text(encoding="utf-8"))["entries"]


def last_entry_for(scenario: str, jit: "bool | None" = None) -> dict | None:
    """The most recent *comparable* committed entry for ``scenario``.

    Comparable means it carries a measured ``speedup_vs_object``
    (``--no-baseline`` entries document wall-clock only) and, when
    ``jit`` is given, was measured with the same jit state (entries
    predating the jit field count as jit-off).
    """
    matching = [
        e
        for e in load_entries()
        if e["scenario"] == scenario
        and "speedup_vs_object" in e
        and (jit is None or bool(e.get("jit", False)) == jit)
    ]
    return matching[-1] if matching else None


def append_entry(entry: dict) -> None:
    entries = load_entries()
    entries.append(entry)
    BENCH_FILE.write_text(
        json.dumps({"format": 1, "entries": entries}, indent=2) + "\n",
        encoding="utf-8",
    )


def scenario_name(
    n_kernels: int, mean_interarrival_ms: float | None = None
) -> str:
    ia = mean_interarrival_ms or SCENARIO_DEFAULTS["mean_interarrival_ms"]
    return f"streaming_scale/apt/ia{int(ia)}/n{n_kernels}"


def main(argv: list[str] | None = None) -> int:
    from repro.core._kernels import resolve_jit
    from repro.experiments.workloads import STREAM_SCENARIOS

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kernels", type=int, default=1_200)
    parser.add_argument(
        "--scenario",
        choices=sorted(STREAM_SCENARIOS),
        default=None,
        help="a registered stream scenario (overrides --kernels)",
    )
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--jit",
        default=None,
        choices=("auto", "on", "off"),
        help="array-backend jit kernels (default: $REPRO_JIT or 'auto')",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the object-backend run (big scenarios; no speedup column)",
    )
    parser.add_argument(
        "--dry-run", action="store_true", help="measure and print, don't append"
    )
    args = parser.parse_args(argv)

    n_kernels = args.kernels
    interarrival: float | None = None
    if args.scenario is not None:
        params = STREAM_SCENARIOS[args.scenario]
        n_kernels = int(params["n_kernels"])
        interarrival = float(params["mean_interarrival_ms"])
    name = scenario_name(n_kernels, interarrival)
    jit_active = resolve_jit(args.jit)
    wall_array, profile = run_backend_profiled(
        "array", n_kernels, args.repeats, jit=args.jit,
        mean_interarrival_ms=interarrival,
    )
    entry = {
        "git_rev": git_rev(),
        "date": date.today().isoformat(),
        "scenario": name,
        "kernels": n_kernels,
        "jit": jit_active,
        "backend_wall_ms": round(wall_array, 1),
    }
    if args.no_baseline:
        entry["baseline"] = "none"
    else:
        wall_object = run_backend(
            "object", n_kernels, args.repeats, mean_interarrival_ms=interarrival
        )
        entry["baseline_wall_ms"] = round(wall_object, 1)
        entry["speedup_vs_object"] = round(wall_object / wall_array, 2)
    if profile:
        entry["profile"] = {
            k: profile[k] for k in _PROFILE_KEYS if k in profile
        }
    print(json.dumps(entry, indent=2))
    if not args.dry_run:
        append_entry(entry)
        print(f"appended to {BENCH_FILE.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
