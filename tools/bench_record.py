#!/usr/bin/env python3
"""Record an engine-backend benchmark entry in ``BENCH_engine.json``.

``BENCH_engine.json`` is the committed benchmark trajectory of the
array-backend hot path: every entry pins the git revision it was
measured at, the scenario, the wall-clock of both backends and the
speedup.  The trajectory documents how the hot path evolved; CI's smoke
benchmark (``benchmarks/test_bench_simulator_scale.py``) reads the last
entry for its scenario and fails when the measured speedup regresses
more than 20 % below it.

Usage::

    python tools/bench_record.py                  # smoke scenario (1.2k)
    python tools/bench_record.py --kernels 100000 # the acceptance entry
    python tools/bench_record.py --dry-run        # measure, don't append

Wall-clock numbers are machine-dependent; the *speedup* column is the
portable quantity — both backends run the identical simulation on the
identical machine, so their ratio tracks algorithmic regressions, not
hardware.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from datetime import date
from pathlib import Path

_ROOT = Path(__file__).parent.parent
_SRC = str(_ROOT / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

BENCH_FILE = _ROOT / "BENCH_engine.json"

#: the streaming saturation scenario all trajectory entries share:
#: Poisson application stream on the 12-processor scale system, APT,
#: mean interarrival far below the service capacity so the ready set
#: grows into the regime the array backend is built for.
SCENARIO_DEFAULTS = {"mean_interarrival_ms": 300.0, "seed": 42, "policy": "apt"}


def git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (subprocess.CalledProcessError, OSError):
        return "unknown"


def run_backend(backend: str, n_kernels: int, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock (ms) of the scenario on ``backend``."""
    from repro.core.simulator import Simulator
    from repro.data.paper_tables import paper_lookup_table
    from repro.experiments.workloads import scale_system, streaming_scale_stream
    from repro.policies.registry import get_policy

    system = scale_system()
    lookup = paper_lookup_table()
    best = float("inf")
    for _ in range(repeats):
        stream = streaming_scale_stream(
            n_kernels=n_kernels,
            seed=SCENARIO_DEFAULTS["seed"],
            mean_interarrival_ms=SCENARIO_DEFAULTS["mean_interarrival_ms"],
        )
        sim = Simulator(system, lookup, backend=backend)
        t0 = time.perf_counter()
        sim.run_stream(
            stream,
            get_policy(SCENARIO_DEFAULTS["policy"]),
            retain_schedule=False,
        )
        best = min(best, (time.perf_counter() - t0) * 1000.0)
    return best


def load_entries() -> list[dict]:
    if not BENCH_FILE.exists():
        return []
    return json.loads(BENCH_FILE.read_text(encoding="utf-8"))["entries"]


def last_entry_for(scenario: str) -> dict | None:
    """The most recent committed entry for ``scenario`` (or ``None``)."""
    matching = [e for e in load_entries() if e["scenario"] == scenario]
    return matching[-1] if matching else None


def append_entry(entry: dict) -> None:
    entries = load_entries()
    entries.append(entry)
    BENCH_FILE.write_text(
        json.dumps({"format": 1, "entries": entries}, indent=2) + "\n",
        encoding="utf-8",
    )


def scenario_name(n_kernels: int) -> str:
    return f"streaming_scale/apt/ia300/n{n_kernels}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kernels", type=int, default=1_200)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--dry-run", action="store_true", help="measure and print, don't append"
    )
    args = parser.parse_args(argv)

    name = scenario_name(args.kernels)
    wall_array = run_backend("array", args.kernels, args.repeats)
    wall_object = run_backend("object", args.kernels, args.repeats)
    entry = {
        "git_rev": git_rev(),
        "date": date.today().isoformat(),
        "scenario": name,
        "kernels": args.kernels,
        "backend_wall_ms": round(wall_array, 1),
        "baseline_wall_ms": round(wall_object, 1),
        "speedup_vs_object": round(wall_object / wall_array, 2),
    }
    print(json.dumps(entry, indent=2))
    if not args.dry_run:
        append_entry(entry)
        print(f"appended to {BENCH_FILE.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
