#!/usr/bin/env python
"""Docs-consistency check: smoke-execute fenced ``python`` blocks.

Extracts every fenced code block whose info string is exactly
``python`` from README.md and docs/*.md and executes it, so
documentation examples cannot rot silently (a renamed function or
changed signature fails CI instead of lingering in prose).

Conventions
-----------
* Blocks in one file share a namespace and run top to bottom — a later
  block may use names an earlier block defined (the architecture
  guide's worked example does this).
* A block that is intentionally not runnable must be fenced with a
  different info string (e.g. ``python noexec`` or ``text``); plain
  ``bash``/``text`` fences are never executed.
* Blocks run with the repository's ``src/`` on ``sys.path`` and the
  working directory set to a throwaway temp dir, so examples that write
  files (cache dirs, results) cannot dirty the checkout.
* The scripts listed in :data:`EXAMPLE_SCRIPTS` are additionally
  smoke-executed (with ``REPRO_EXAMPLE_FAST=1``), so the runnable
  examples they demonstrate cannot rot either.

Usage::

    python tools/check_docs.py [FILE ...]     # default: README.md docs/*.md
                                              #          + EXAMPLE_SCRIPTS
"""

from __future__ import annotations

import re
import sys
import tempfile
import traceback
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
FENCE = re.compile(r"^```(?P<info>[^\n`]*)\n(?P<body>.*?)^```\s*$", re.M | re.S)

#: Example scripts covered by the docs check (repo-relative).  Each must
#: honour REPRO_EXAMPLE_FAST=1 with a seconds-scale configuration.
EXAMPLE_SCRIPTS = ["examples/open_system_saturation.py"]


def python_blocks(text: str) -> list[tuple[int, str]]:
    """(start line, source) of every block fenced exactly as ``python``."""
    blocks = []
    for match in FENCE.finditer(text):
        if match.group("info").strip() == "python":
            line = text[: match.start()].count("\n") + 2  # first code line
            blocks.append((line, match.group("body")))
    return blocks


def check_file(path: Path) -> list[str]:
    """Run the file's blocks in one shared namespace; return failures."""
    failures: list[str] = []
    namespace: dict[str, object] = {"__name__": f"docs_{path.stem}"}
    for line, source in python_blocks(path.read_text(encoding="utf-8")):
        label = f"{path.relative_to(ROOT)}:{line}"
        try:
            code = compile(source, str(label), "exec")
            exec(code, namespace)  # noqa: S102 - the point of the check
        except Exception:
            failures.append(f"{label}\n{traceback.format_exc()}")
            print(f"  FAIL {label}")
        else:
            print(f"  ok   {label}")
    return failures


def check_example(path: Path) -> list[str]:
    """Smoke-execute one example script (stdout suppressed)."""
    import contextlib
    import io
    import os

    label = str(path.relative_to(ROOT))
    os.environ["REPRO_EXAMPLE_FAST"] = "1"
    try:
        code = compile(path.read_text(encoding="utf-8"), label, "exec")
        with contextlib.redirect_stdout(io.StringIO()):
            exec(code, {"__name__": "__main__", "__file__": str(path)})  # noqa: S102
    except Exception:
        return [f"{label}\n{traceback.format_exc()}"]
    return []


def main(argv: list[str]) -> int:
    if argv:
        files = [Path(a).resolve() for a in argv]
        examples: list[Path] = []
    else:
        files = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]
        examples = [ROOT / rel for rel in EXAMPLE_SCRIPTS]
    sys.path.insert(0, str(ROOT / "src"))
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        import os

        cwd = os.getcwd()
        os.chdir(tmp)
        try:
            for path in files:
                print(f"{path.relative_to(ROOT)}:")
                failures += check_file(path)
            if examples:
                print("examples:")
                for path in examples:
                    result = check_example(path)
                    failures += result
                    print(f"  {'FAIL' if result else 'ok  '} "
                          f"{path.relative_to(ROOT)}")
        finally:
            os.chdir(cwd)
    if failures:
        print(f"\n{len(failures)} documentation block(s) failed:\n")
        for failure in failures:
            print(failure)
        return 1
    print("\nall documentation examples execute cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
