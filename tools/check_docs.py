#!/usr/bin/env python
"""Docs-consistency check: smoke-execute fenced ``python`` blocks.

Thin shim kept for CLI compatibility — the gate itself lives in
:mod:`repro.checks.gates` and runs as ``tools/run_checks.py --gates
docs`` (rule id ``docs-example``).  Conventions (unchanged):

* Blocks in one file share a namespace and run top to bottom.
* A block that is intentionally not runnable must use a different info
  string (``python noexec``, ``text``, ``bash`` — never executed).
* Blocks run with ``src/`` on ``sys.path`` and a throwaway temp cwd.
* The example scripts in ``repro.checks.gates.EXAMPLE_SCRIPTS`` are
  additionally smoke-executed with ``REPRO_EXAMPLE_FAST=1``.

Usage::

    python tools/check_docs.py [FILE ...]     # default: README.md docs/*.md
                                              #          + EXAMPLE_SCRIPTS
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.checks.gates import check_docs  # noqa: E402


def main(argv: list[str]) -> int:
    files = [Path(a).resolve() for a in argv] if argv else None
    findings = check_docs(ROOT, files=files)
    if findings:
        print(f"\n{len(findings)} documentation block(s) failed:\n")
        for finding in findings:
            print(finding.render())
        return 1
    print("\nall documentation examples execute cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
