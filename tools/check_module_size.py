#!/usr/bin/env python3
"""Fail when a source module outgrows its line budget.

Guards the engine/dynamics decomposition: ``repro/core/simulator.py``
was split from a 1,300-line monolith into a facade over
``repro/core/engine.py`` + ``repro/core/dynamics.py``, and CI enforces
that it stays a facade.  Usage::

    python tools/check_module_size.py src/repro/core/simulator.py 700

Multiple ``path budget`` pairs may be given; the script prints one line
per module and exits non-zero if any budget is exceeded.
"""

from __future__ import annotations

import sys
from pathlib import Path


def main(argv: list[str]) -> int:
    if len(argv) < 2 or len(argv) % 2 != 0:
        print(
            "usage: check_module_size.py <path> <max_lines> [<path> <max_lines> ...]",
            file=sys.stderr,
        )
        return 2
    failed = False
    for path_arg, budget_arg in zip(argv[0::2], argv[1::2]):
        path = Path(path_arg)
        budget = int(budget_arg)
        lines = len(path.read_text(encoding="utf-8").splitlines())
        status = "ok" if lines <= budget else "OVER BUDGET"
        print(f"{path}: {lines} lines (budget {budget}) — {status}")
        if lines > budget:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
