#!/usr/bin/env python3
"""Fail when a source module outgrows its line budget.

Thin shim kept for CLI compatibility — the gate itself lives in
:mod:`repro.checks.gates` and runs as part of ``tools/run_checks.py``
(rule id ``module-size``).  Usage::

    python tools/check_module_size.py src/repro/core/simulator.py 700

Multiple ``path budget`` pairs may be given; the script prints one line
per module and exits non-zero if any budget is exceeded.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.checks.gates import check_module_sizes  # noqa: E402


def main(argv: list[str]) -> int:
    if argv and (len(argv) < 2 or len(argv) % 2 != 0):
        print(
            "usage: check_module_size.py [<path> <max_lines> ...]",
            file=sys.stderr,
        )
        return 2
    budgets = (
        {path: int(budget) for path, budget in zip(argv[0::2], argv[1::2])}
        if argv
        else None  # the committed SIZE_BUDGETS
    )
    findings = check_module_sizes(ROOT, budgets)
    for relpath, budget in sorted((budgets or {}).items()) or []:
        lines = len((ROOT / relpath).read_text(encoding="utf-8").splitlines())
        status = "ok" if lines <= budget else "OVER BUDGET"
        print(f"{relpath}: {lines} lines (budget {budget}) — {status}")
    for finding in findings:
        print(finding.render())
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
