#!/usr/bin/env python
"""Load/soak harness for the scenario service.

Drives N concurrent scenario submissions (a mix of duplicate and unique
specs from rotating client identities) against an in-process server,
then polls every accepted job to a terminal state, measuring:

* **dedup** — how many submissions were served entirely from the shared
  result store / in-flight coalescing.  The acceptance bar: *exactly
  one simulation per unique spec*, no matter how many duplicates raced.
* **drops** — accepted (202) jobs must all reach ``done``; anything
  else is a dropped accepted job.
* **poll latency** — p50/p99 over every ``GET /jobs/<id>`` roundtrip.

The report is written to ``results/local/service_load.txt`` (untracked:
wall-clock numbers are machine-dependent) and uploaded as a CI artifact
by the ``service-smoke`` job, which runs this harness at reduced scale.

Usage::

    PYTHONPATH=src python tools/load_test.py --requests 200 --unique 20

Exit status is non-zero when an invariant (zero rejects, zero drops,
exact dedup) fails, so CI catches regressions without parsing the
report.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from pathlib import Path

from repro.core.system import CPU_GPU_FPGA
from repro.experiments.scenarios import ScenarioSpec, WorkloadSpec
from repro.experiments.sweep import PolicySpec, system_to_dict
from repro.service.client import AsyncServiceClient
from repro.service.server import ServiceServer, run_service

DEFAULT_OUT = Path("results/local/service_load.txt")


def make_specs(n_unique: int, n_kernels: int = 6) -> list[dict[str, object]]:
    """``n_unique`` distinct single-payload scenario specs.

    Tiny pipeline workloads on the paper platform, distinguished only
    by their generator seed — so every spec costs one simulation and
    duplicates are byte-identical submissions.
    """
    system = system_to_dict(CPU_GPU_FPGA())
    specs = []
    for i in range(n_unique):
        specs.append(
            ScenarioSpec(
                name=f"load_{i:03d}",
                description="load-test pipeline unit",
                system=system,
                workload=WorkloadSpec.of(
                    "pipeline", n_kernels=n_kernels, stage_width=2, seed=10_000 + i
                ),
                policies=(PolicySpec.of("met"),),
            ).to_dict()
        )
    return specs


def percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index]


async def _drive(
    server: ServiceServer,
    n_requests: int,
    n_unique: int,
    n_clients: int,
    poll_s: float,
) -> dict[str, object]:
    client = AsyncServiceClient(server.host, server.port)
    specs = make_specs(n_unique)

    submit_latencies: list[float] = []
    poll_latencies: list[float] = []

    async def _submit(i: int) -> tuple[int, dict]:
        t0 = time.perf_counter()
        status, body = await client.submit(
            spec=specs[i % n_unique], client=f"c{i % n_clients}"
        )
        submit_latencies.append(time.perf_counter() - t0)
        return status, body

    t_start = time.perf_counter()
    submitted = await asyncio.gather(*(_submit(i) for i in range(n_requests)))
    t_submitted = time.perf_counter()

    accepted = [body["job"]["id"] for status, body in submitted if status == 202]
    rejected = sum(1 for status, _ in submitted if status == 429)
    other = sum(1 for status, _ in submitted if status not in (202, 429))

    async def _poll_to_done(job_id: str) -> dict:
        while True:
            t0 = time.perf_counter()
            status, body = await client.status(job_id)
            poll_latencies.append(time.perf_counter() - t0)
            if status != 200:
                return {"state": f"poll-error-{status}"}
            job = body["job"]
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            await asyncio.sleep(poll_s)

    finals = await asyncio.gather(*(_poll_to_done(job_id) for job_id in accepted))
    t_done = time.perf_counter()

    _, stats = await client.stats()
    states: dict[str, int] = {}
    for job in finals:
        states[job["state"]] = states.get(job["state"], 0) + 1
    simulated = sum(int(job.get("simulated", 0)) for job in finals)
    store_hits = sum(int(job.get("store_hits", 0)) for job in finals)
    coalesced = sum(int(job.get("coalesced", 0)) for job in finals)
    dropped = len(accepted) - states.get("done", 0)
    duplicates = n_requests - n_unique
    served_from_cache = store_hits + coalesced

    return {
        "requests": n_requests,
        "unique_specs": n_unique,
        "clients": n_clients,
        "accepted": len(accepted),
        "rejected": rejected,
        "errors": other,
        "states": states,
        "dropped_accepted": dropped,
        "simulated": simulated,
        "store_hits": store_hits,
        "coalesced": coalesced,
        "duplicates": duplicates,
        "served_from_cache": served_from_cache,
        "dedup_ratio": served_from_cache / max(1, duplicates),
        "store_puts": stats["store"]["puts"],
        "submit_p50_ms": 1e3 * percentile(submit_latencies, 0.50),
        "submit_p99_ms": 1e3 * percentile(submit_latencies, 0.99),
        "poll_count": len(poll_latencies),
        "poll_p50_ms": 1e3 * percentile(poll_latencies, 0.50),
        "poll_p99_ms": 1e3 * percentile(poll_latencies, 0.99),
        "submit_wall_s": t_submitted - t_start,
        "total_wall_s": t_done - t_start,
    }


def run_load_test(
    n_requests: int = 200,
    n_unique: int = 20,
    n_clients: int = 8,
    slots: int = 4,
    executor: str = "inline",
    poll_s: float = 0.02,
    out: "Path | str | None" = DEFAULT_OUT,
) -> dict[str, object]:
    """Run the full harness against a fresh in-process server."""
    with run_service(
        executor=executor, slots=slots, queue_limit=n_requests + 8
    ) as server:
        loop = asyncio.new_event_loop()
        try:
            report = loop.run_until_complete(
                _drive(server, n_requests, n_unique, n_clients, poll_s)
            )
        finally:
            loop.close()
    if out is not None:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(format_report(report), encoding="utf-8")
    return report


def format_report(report: dict[str, object]) -> str:
    lines = ["service load test", "================="]
    for key in (
        "requests",
        "unique_specs",
        "clients",
        "accepted",
        "rejected",
        "errors",
        "dropped_accepted",
        "simulated",
        "store_hits",
        "coalesced",
        "duplicates",
        "served_from_cache",
        "dedup_ratio",
        "store_puts",
    ):
        lines.append(f"{key:<20s} {report[key]}")
    for key in (
        "submit_p50_ms",
        "submit_p99_ms",
        "poll_p50_ms",
        "poll_p99_ms",
    ):
        lines.append(f"{key:<20s} {report[key]:.3f}")
    lines.append(f"{'poll_count':<20s} {report['poll_count']}")
    lines.append(f"{'submit_wall_s':<20s} {report['submit_wall_s']:.3f}")
    lines.append(f"{'total_wall_s':<20s} {report['total_wall_s']:.3f}")
    return "\n".join(lines) + "\n"


def check_invariants(report: dict[str, object]) -> list[str]:
    """The acceptance bars; returns human-readable violations."""
    problems = []
    if report["rejected"] or report["errors"]:
        problems.append(
            f"submissions not accepted: {report['rejected']} rejected, "
            f"{report['errors']} errors"
        )
    if report["dropped_accepted"]:
        problems.append(f"{report['dropped_accepted']} accepted jobs did not finish")
    if report["simulated"] != report["unique_specs"]:
        problems.append(
            f"expected exactly {report['unique_specs']} simulations, "
            f"got {report['simulated']}"
        )
    if report["store_puts"] != report["unique_specs"]:
        problems.append(
            f"store holds {report['store_puts']} records for "
            f"{report['unique_specs']} unique specs"
        )
    return problems


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--unique", type=int, default=20)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--slots", type=int, default=4)
    parser.add_argument("--executor", choices=("inline", "process"), default="inline")
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args(argv)

    report = run_load_test(
        n_requests=args.requests,
        n_unique=args.unique,
        n_clients=args.clients,
        slots=args.slots,
        executor=args.executor,
        out=args.out,
    )
    print(format_report(report), end="")
    print(f"-> {args.out}")
    problems = check_invariants(report)
    for problem in problems:
        print(f"INVARIANT VIOLATED: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
