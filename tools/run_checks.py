#!/usr/bin/env python
"""CI / pre-commit entry point for the static-checks pass.

Thin wrapper over :mod:`repro.checks.runner` (also reachable as
``apt-sched check``); see ``docs/checks.md`` for the rule catalog.

Usage::

    python tools/run_checks.py                  # rules + size gate
    python tools/run_checks.py --gates docs     # execute doc examples
    python tools/run_checks.py --format github  # workflow annotations
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.checks.runner import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
